"""Request coalescing — many concurrent scalar queries, one gather.

The batch layer answers ``K`` range-sums in one fancy-indexed corner
gather (:meth:`~repro.query.engine.RangeQueryEngine.sum_many`), but a
network service receives those ``K`` queries as *separate* requests.
The coalescer closes that gap: scalar sum/count/average requests that
arrive within a small batching window against the same ``(cube,
operator)`` pair are parked on futures, then answered together by a
single kernel-backed ``*_many`` call whose results fan back out to the
waiting requests.

A batch flushes when its window timer fires or when it reaches
``max_batch`` rows, whichever comes first.  The window is the service's
latency/throughput dial: 0 disables coalescing (the service then
dispatches per-query), a couple of milliseconds is enough to soak up a
burst of concurrent dashboard panels.

Only identity-valued aggregates coalesce (sum, count, average — empty
boxes are legal rows).  MAX/MIN return witness cells whose scalar and
batch tie-breaks may legitimately differ, so the service keeps them on
the scalar path.

Everything here runs on one event loop; state is only touched between
``await`` points, so there are no locks.  Batches execute as *detached*
tasks: a waiter whose deadline expires is cancelled alone, while the
batch runs to completion and resolves everyone else's futures — one
impatient request must never strand its co-batched neighbours.
"""

from __future__ import annotations

import asyncio
from collections.abc import Awaitable, Callable, Sequence

import numpy as np

from repro._util import Box

#: Aggregates safe to coalesce: identity-valued, witness-free.
COALESCIBLE = ("sum", "count", "average")

#: An async callable executing one coalesced batch:
#: ``(cube, op, lows, highs) -> values`` (one entry per row).
BatchRunner = Callable[
    [str, str, np.ndarray, np.ndarray], Awaitable[Sequence[object]]
]


class _PendingBatch:
    """Requests parked against one ``(cube, op)`` pair."""

    __slots__ = ("cube", "op", "boxes", "futures", "timer")

    def __init__(self, cube: str, op: str) -> None:
        self.cube = cube
        self.op = op
        self.boxes: list[Box] = []
        self.futures: list[asyncio.Future[object]] = []
        self.timer: asyncio.Task[None] | None = None


class RequestCoalescer:
    """Batch concurrent scalar queries behind a small time window.

    Args:
        execute: Async callable that runs one batch and returns its
            per-row answers (the service wires this to the engine's
            ``*_many`` methods, possibly offloaded to a worker thread).
        window_s: Batching window in seconds.  ``<= 0`` means every
            submission flushes immediately as a batch of one.
        max_batch: Rows at which a batch flushes early, bounding both
            latency and the size of a single gather.
    """

    def __init__(
        self,
        execute: BatchRunner,
        *,
        window_s: float = 0.002,
        max_batch: int = 256,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._execute = execute
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._pending: dict[tuple[str, str], _PendingBatch] = {}
        self._flush_tasks: set[asyncio.Task[None]] = set()
        self.submitted = 0
        self.batches = 0
        self.window_flushes = 0
        self.size_flushes = 0
        self.largest_batch = 0

    async def submit(self, cube: str, op: str, box: Box) -> object:
        """Park one scalar query; resolves with its answer.

        The returned awaitable completes when the batch containing this
        query executes.  A failing batch fails every parked request with
        the same exception.
        """
        if op not in COALESCIBLE:
            raise ValueError(
                f"cannot coalesce {op!r}; one of {COALESCIBLE}"
            )
        self.submitted += 1
        loop = asyncio.get_running_loop()
        future: asyncio.Future[object] = loop.create_future()
        if self.window_s <= 0:
            batch = _PendingBatch(cube, op)
            batch.boxes.append(box)
            batch.futures.append(future)
            await self._run_batch(batch)
            return await future
        key = (cube, op)
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch(cube, op)
            self._pending[key] = batch
            batch.timer = loop.create_task(self._window_flush(key, batch))
        batch.boxes.append(box)
        batch.futures.append(future)
        if len(batch.boxes) >= self.max_batch:
            self.size_flushes += 1
            self._detach(key, batch)
            # Detached, not awaited: if this submitter's deadline
            # cancels it while the batch executes, the CancelledError
            # must not abort the batch and strand every other waiter.
            self._spawn_flush(batch)
        return await future

    async def flush_all(self) -> None:
        """Execute every pending batch now (shutdown/test hook).

        Also drains flushes already in flight, so after this returns
        every previously parked future is resolved.
        """
        while self._pending:
            key, batch = next(iter(self._pending.items()))
            self._detach(key, batch)
            await self._run_batch(batch)
        if self._flush_tasks:
            await asyncio.gather(
                *tuple(self._flush_tasks), return_exceptions=True
            )

    def pending_rows(self) -> int:
        """Rows currently parked across all open batches."""
        return sum(len(b.boxes) for b in self._pending.values())

    def _detach(self, key: tuple[str, str], batch: _PendingBatch) -> None:
        """Remove a batch from the pending map and disarm its timer."""
        if self._pending.get(key) is batch:
            del self._pending[key]
        timer, batch.timer = batch.timer, None
        # The window-flush path detaches from inside its own timer task;
        # cancelling the current task would deliver CancelledError at
        # the batch's next await and abandon every parked future.
        if timer is not None and timer is not asyncio.current_task():
            timer.cancel()

    def _spawn_flush(self, batch: _PendingBatch) -> None:
        """Run a batch as a detached task, kept referenced until done."""
        task = asyncio.get_running_loop().create_task(
            self._run_batch(batch)
        )
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _window_flush(
        self, key: tuple[str, str], batch: _PendingBatch
    ) -> None:
        await asyncio.sleep(self.window_s)
        if self._pending.get(key) is not batch:
            return  # already flushed on size
        self.window_flushes += 1
        self._detach(key, batch)
        self._spawn_flush(batch)

    async def _run_batch(self, batch: _PendingBatch) -> None:
        """Execute one batch and fan results (or the failure) back out.

        Never raises: outcomes travel exclusively through the parked
        futures, so the size-flush path, the timer path, and the
        ``flush_all`` path behave identically.
        """
        self.batches += 1
        self.largest_batch = max(self.largest_batch, len(batch.boxes))
        lows = np.array([b.lo for b in batch.boxes], dtype=np.int64)
        highs = np.array([b.hi for b in batch.boxes], dtype=np.int64)
        try:
            values = await self._execute(
                batch.cube, batch.op, lows, highs
            )
        except Exception as exc:  # noqa: BLE001 — fan out verbatim
            for future in batch.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, value in zip(batch.futures, values):
            if not future.done():
                future.set_result(value)

    def stats(self) -> dict:
        """A plain-dict snapshot for the ``/stats`` endpoint."""
        return {
            "window_s": self.window_s,
            "max_batch": self.max_batch,
            "submitted": self.submitted,
            "batches": self.batches,
            "window_flushes": self.window_flushes,
            "size_flushes": self.size_flushes,
            "largest_batch": self.largest_batch,
            "pending_rows": self.pending_rows(),
            "inflight_flushes": len(self._flush_tasks),
        }
