"""A minimal HTTP/1.1 front end for :class:`~repro.serving.QueryService`.

Hand-rolled on :func:`asyncio.start_server` — the serving layer takes no
runtime dependencies beyond the standard library.  The surface is JSON
over five POST endpoints and three GET endpoints:

========  ===============  ==============================================
method    path             handled by
========  ===============  ==============================================
POST      ``/query``       :meth:`QueryService.query`
POST      ``/query_batch``  :meth:`QueryService.query_batch`
POST      ``/slice``       :meth:`QueryService.slice`
POST      ``/rollup``      :meth:`QueryService.rollup`
POST      ``/update``      :meth:`QueryService.update`
POST      ``/advise``      :meth:`QueryService.advise` (dry-run advisor)
GET       ``/design``      :meth:`QueryService.describe_design`
GET       ``/stats``       :meth:`QueryService.stats`
GET       ``/cubes``       :meth:`QueryService.describe_cubes`
GET       ``/healthz``     liveness probe
========  ===============  ==============================================

Connections are keep-alive by default (HTTP/1.1 semantics); every
:class:`~repro.serving.errors.ServingError` maps to its status with a
JSON error body, anything else escaping a handler is a 500.  Each
connection handles one request at a time — concurrency comes from
concurrent connections, which is how the load generator and benchmark
drive the service.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.serving.errors import (
    BadRequest,
    ServingError,
    UnknownResource,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.service import QueryService

#: Reason phrases for the statuses the service actually emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Largest accepted request body (a 4096-row batch fits comfortably).
MAX_BODY_BYTES = 8 << 20

#: Largest accepted request/header line.
MAX_LINE_BYTES = 16 << 10


class _ConnectionClosed(Exception):
    """Peer closed (or broke) the connection between requests."""


class ServingServer:
    """Bind a :class:`QueryService` to a TCP port.

    Args:
        service: The query service to expose.
        host: Bind address (loopback by default).
        port: TCP port; ``0`` picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's main loop)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _ConnectionClosed:
                    break
                except BadRequest as exc:
                    self._write_response(
                        writer, exc.status, exc.payload(), False
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload = await self._dispatch(
                    method, path, body
                )
                self._write_response(writer, status, payload, keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Shutdown cancelled this connection's task; ending it in a
            # cancelled state makes asyncio's stream callback log a
            # spurious traceback, so finish cleanly instead.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        request_line = await self._read_line(reader)
        if not request_line:
            return None
        parts = request_line.split()
        if len(parts) != 3:
            raise BadRequest(f"malformed request line {request_line!r}")
        method, path, version = parts
        if not version.startswith("HTTP/1."):
            raise BadRequest(f"unsupported protocol {version!r}")
        headers: dict[str, str] = {}
        while True:
            line = await self._read_line(reader)
            if not line:
                break
            name, _, value = line.partition(":")
            if not _:
                raise BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise BadRequest("malformed Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap"
            )
        body = b""
        if length:
            body = await reader.readexactly(length)
        return method.upper(), path, headers, body

    async def _read_line(self, reader: asyncio.StreamReader) -> str:
        try:
            raw = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                raise _ConnectionClosed from None
            raw = exc.partial
        except asyncio.LimitOverrunError as exc:
            raise BadRequest("header line too long") from exc
        if len(raw) > MAX_LINE_BYTES:
            raise BadRequest("header line too long")
        return raw.decode("latin-1").rstrip("\r\n")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict]:
        try:
            if method == "GET":
                return 200, self._get(path)
            if method == "POST":
                return 200, await self._post(path, body)
            raise BadRequest(f"unsupported method {method}")
        except ServingError as exc:
            return exc.status, exc.payload()
        except Exception as exc:  # noqa: BLE001 — boundary: bug → 500
            return 500, {
                "error": "internal",
                "message": f"{type(exc).__name__}: {exc}",
            }

    def _get(self, path: str) -> dict:
        if path == "/healthz":
            return {"ok": True, "cubes": len(self.service.cubes)}
        if path == "/stats":
            return self.service.stats()
        if path == "/cubes":
            return self.service.describe_cubes()
        if path == "/design":
            return self.service.describe_design()
        raise UnknownResource(f"no GET endpoint {path!r}")

    async def _post(self, path: str, body: bytes) -> dict:
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        if path == "/query":
            return await self.service.query(payload)
        if path == "/query_batch":
            return await self.service.query_batch(payload)
        if path == "/slice":
            return await self.service.slice(payload)
        if path == "/rollup":
            return await self.service.rollup(payload)
        if path == "/update":
            return await self.service.update(payload)
        if path == "/advise":
            return await self.service.advise(payload)
        raise UnknownResource(f"no POST endpoint {path!r}")

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
