"""Tiered query routing: materialized plan → live indexes → naive scan.

A served cube can carry up to three answering tiers, tried cheapest
first:

1. **materialized** — a §9 physical-design plan
   (:class:`~repro.optimizer.materialize.MaterializedCuboidSet`); used
   for SUM when the plan routes the query to a materialized ancestor
   cuboid (``route()`` non-None, so the tier label is honest — the
   plan's own base-scan fallback is never reported as tier 1).
2. **indexed** — the cube's
   :class:`~repro.query.engine.RangeQueryEngine` (prefix-sum family for
   sum/count/average, max trees for max/min).  This is the only tier
   with a vectorized batch path, so coalesced dispatch always lands
   here.
3. **fallback** — a naive scan of the retained base cube: the paper's
   no-precomputation control arm, correct for every operator at
   ``O(volume)`` cost.

The router *chooses* a tier and *runs* the chosen computation
synchronously; the service owns timing, offload to worker threads, and
the cache/coalescer in front.  Per-``(cube, tier)`` latency totals are
recorded via :meth:`TieredRouter.record` and surfaced under ``/stats``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro._util import Box, check_query_box
from repro.query.naive import (
    naive_max_index,
    naive_range_sum,
)
from repro.query.ranges import RangeQuery
from repro.serving.errors import Unsupported

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.service import ServedCube

#: Tier names, cheapest-first (the probe order for scalar routing).
TIERS = ("materialized", "indexed", "fallback")

#: Operators the scalar surface serves.
SCALAR_OPS = ("sum", "count", "average", "max", "min")


def _scalar(value: object) -> object:
    """numpy scalar → plain Python scalar (mirrors the engine contract)."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray) and value.ndim == 0:
        return value.item()
    return value


@dataclass
class TierStats:
    """Latency accounting for one ``(cube, tier)`` pair."""

    queries: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.queries += 1
        self.seconds += seconds
        self.max_seconds = max(self.max_seconds, seconds)

    def snapshot(self) -> dict:
        average = self.seconds / self.queries if self.queries else 0.0
        return {
            "queries": self.queries,
            "total_ms": self.seconds * 1e3,
            "avg_ms": average * 1e3,
            "max_ms": self.max_seconds * 1e3,
        }


class TieredRouter:
    """Choose and run the cheapest tier able to answer a request."""

    def __init__(self) -> None:
        self._stats: dict[tuple[str, str], TierStats] = {}

    # ------------------------------------------------------------------
    # Tier selection
    # ------------------------------------------------------------------

    def choose_scalar(
        self,
        cube: ServedCube,
        op: str,
        query: RangeQuery | None,
        box: Box,
    ) -> str:
        """The tier a scalar ``op`` over ``box`` will execute on.

        Raises:
            Unsupported: No tier can answer (the cube was registered
                with the naive fallback disabled and nothing else
                covers the operator).
        """
        if (
            op == "sum"
            and query is not None
            and cube.cuboids is not None
            and cube.cuboids.route(query) is not None
        ):
            return "materialized"
        if cube.engine is not None:
            if op in ("sum", "count", "average"):
                return "indexed"
            if cube.engine.route("max") is not None:
                return "indexed"
        if cube.fallback:
            return "fallback"
        raise Unsupported(
            f"cube {cube.name!r} has no tier for operator {op!r}"
        )

    def choose_batch(self, cube: ServedCube, op: str) -> str:
        """The tier a ``K``-row batch of ``op`` executes on.

        Batches skip the materialized tier (the §9 plan has no batch
        surface); they run on the engine's vectorized ``*_many`` path
        when available, else row-by-row on the fallback scan.
        """
        if cube.engine is not None:
            if op in ("sum", "count", "average"):
                return "indexed"
            if cube.engine.route("max") is not None:
                return "indexed"
        if cube.fallback:
            return "fallback"
        raise Unsupported(
            f"cube {cube.name!r} has no tier for operator {op!r}"
        )

    # ------------------------------------------------------------------
    # Execution (synchronous — the service decides where this runs)
    # ------------------------------------------------------------------

    def run_scalar(
        self,
        cube: ServedCube,
        tier: str,
        op: str,
        query: RangeQuery | None,
        box: Box,
    ) -> object:
        """Run one scalar aggregate on the chosen tier.

        Returns a plain scalar for sum/count, ``float | None`` for
        average, and ``(index, value)`` for max/min — byte-identical to
        the engine surface so served answers match direct calls.
        """
        if tier == "materialized":
            assert query is not None and cube.cuboids is not None
            return _scalar(cube.cuboids.range_sum(query))
        if tier == "indexed":
            engine = cube.engine
            assert engine is not None
            method = getattr(engine, op)
            result = method(box)
            if op in ("max", "min"):
                index, value = result
                return tuple(int(i) for i in index), value
            return result
        return self._run_fallback_scalar(cube, op, box)

    def _run_fallback_scalar(
        self, cube: ServedCube, op: str, box: Box
    ) -> object:
        base = cube.base
        if op == "sum":
            return _scalar(naive_range_sum(base, box))
        if op == "count":
            if cube.counts is not None:
                return _scalar(naive_range_sum(cube.counts, box))
            return box.volume
        if op == "average":
            total = _scalar(naive_range_sum(base, box))
            if cube.counts is not None:
                denominator = _scalar(naive_range_sum(cube.counts, box))
            else:
                denominator = box.volume
            if denominator == 0:
                return None
            return float(total) / float(denominator)
        if op == "max":
            index = naive_max_index(base, box)
            return index, _scalar(base[index])
        if op == "min":
            check_query_box(box, base.shape, allow_empty=False)
            window = base[box.slices()]
            local = np.unravel_index(
                int(np.argmin(window)), window.shape
            )
            index = tuple(
                int(l + o) for l, o in zip(local, box.lo)
            )
            return index, _scalar(base[index])
        raise Unsupported(f"unknown operator {op!r}")

    def run_batch(
        self,
        cube: ServedCube,
        tier: str,
        op: str,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> object:
        """Run a ``(K, d)`` batch on the chosen tier.

        Returns a ``(K,)`` value array for sum/count/average and
        ``(indices, values)`` for max/min, exactly as the engine's
        ``*_many`` methods do.
        """
        if tier == "indexed":
            engine = cube.engine
            assert engine is not None
            return getattr(engine, f"{op}_many")(lows, highs)
        rows = [
            Box(tuple(int(v) for v in lo), tuple(int(v) for v in hi))
            for lo, hi in zip(lows, highs)
        ]
        if op in ("sum", "count", "average"):
            values = [
                self._run_fallback_scalar(cube, op, box) for box in rows
            ]
            if op == "average" and any(v is None for v in values):
                out = np.empty(len(values), dtype=object)
                out[:] = values
                return out
            return np.asarray(values)
        indices = []
        values = []
        for box in rows:
            index, value = self._run_fallback_scalar(cube, op, box)
            indices.append(index)
            values.append(value)
        return (
            np.asarray(indices, dtype=np.int64).reshape(len(rows), -1),
            np.asarray(values),
        )

    # ------------------------------------------------------------------
    # Latency accounting
    # ------------------------------------------------------------------

    def record(self, cube: str, tier: str, seconds: float) -> None:
        """Add one served request's wall time to ``(cube, tier)``."""
        stats = self._stats.get((cube, tier))
        if stats is None:
            stats = self._stats[(cube, tier)] = TierStats()
        stats.record(seconds)

    def stats(self) -> dict:
        """Nested ``{cube: {tier: latency-snapshot}}`` for ``/stats``."""
        out: dict[str, dict[str, dict]] = {}
        for (cube, tier), stats in sorted(self._stats.items()):
            out.setdefault(cube, {})[tier] = stats.snapshot()
        return out
