"""Seeded load generation for the serving layer.

Drives the HTTP surface with a reproducible request stream: every box is
drawn from an explicit :class:`numpy.random.Generator` (the determinism
lint rule holds this module to the same no-unseeded-randomness standard
as the verification harness), and a configurable fraction of requests
re-ask a small hot pool of boxes so the result cache sees realistic
dashboard-style repetition.

:func:`run_load` fans the stream over ``concurrency`` keep-alive
connections and reports admitted-request latency percentiles, shed/error
counts, and throughput — the numbers ``benchmarks/bench_serving.py``
publishes and the overload tests assert on.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving.client import ServingClient, ServingClientError


def generate_requests(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    count: int,
    *,
    cube: str = "demo",
    ops: tuple[str, ...] = ("sum",),
    hot_fraction: float = 0.0,
    hot_pool: int = 16,
) -> list[dict]:
    """A reproducible stream of ``/query`` payloads over one cube.

    Args:
        rng: Seeded generator — the only randomness source.
        shape: The target cube's shape.
        count: Requests to generate.
        cube: Registered cube name.
        ops: Operators drawn uniformly per request.
        hot_fraction: Fraction of requests that re-ask a box from the
            hot pool (cache-hit traffic); ``0`` makes every box fresh.
        hot_pool: Size of the hot pool the repeated asks draw from.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )

    def random_ranges() -> list[list[int]]:
        ranges = []
        for extent in shape:
            lo = int(rng.integers(0, extent))
            hi = int(rng.integers(lo, extent))
            ranges.append([lo, hi])
        return ranges

    pool = [random_ranges() for _ in range(max(1, hot_pool))]
    payloads = []
    for _ in range(count):
        if hot_fraction and rng.random() < hot_fraction:
            ranges = pool[int(rng.integers(0, len(pool)))]
        else:
            ranges = random_ranges()
        op = str(ops[int(rng.integers(0, len(ops)))])
        payloads.append(
            {"cube": cube, "op": op, "ranges": ranges}
        )
    return payloads


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run."""

    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def percentile_ms(self, q: float) -> float:
        """Latency percentile (milliseconds) over completed requests."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99)

    def summary(self) -> dict:
        """A plain-dict report for benchmark JSON."""
        return {
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    *,
    concurrency: int = 8,
) -> LoadReport:
    """Replay ``payloads`` over ``concurrency`` keep-alive connections.

    Each worker owns one connection and pulls from a shared queue, so
    the stream's arrival pattern is work-conserving: the service always
    sees ``concurrency`` outstanding requests until the stream drains.
    Shed requests (429) and deadline expiries (504) are counted, not
    raised; only completed requests contribute latency samples.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queue: asyncio.Queue[dict] = asyncio.Queue()
    for payload in payloads:
        queue.put_nowait(payload)
    report = LoadReport()

    async def worker() -> None:
        client = ServingClient(host, port)
        try:
            await client.connect()
            while True:
                try:
                    payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                started = time.perf_counter()
                try:
                    await client.request("POST", "/query", payload)
                except ServingClientError as exc:
                    if exc.status == 429:
                        report.shed += 1
                    elif exc.status == 504:
                        report.timeouts += 1
                    else:
                        report.errors += 1
                    continue
                report.latencies_s.append(
                    time.perf_counter() - started
                )
                report.completed += 1
        finally:
            await client.aclose()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    report.duration_s = time.perf_counter() - started
    return report
