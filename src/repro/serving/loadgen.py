"""Seeded load generation for the serving layer.

Drives the HTTP surface with a reproducible request stream: every box is
drawn from an explicit :class:`numpy.random.Generator` (the determinism
lint rule holds this module to the same no-unseeded-randomness standard
as the verification harness), and a configurable fraction of requests
re-ask a small hot pool of boxes so the result cache sees realistic
dashboard-style repetition.

:func:`run_load` fans the stream over ``concurrency`` keep-alive
connections and reports admitted-request latency percentiles, shed/error
counts, and throughput — the numbers ``benchmarks/bench_serving.py``
publishes and the overload tests assert on.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.serving.client import ServingClient, ServingClientError


def generate_requests(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    count: int,
    *,
    cube: str = "demo",
    ops: tuple[str, ...] = ("sum",),
    hot_fraction: float = 0.0,
    hot_pool: int = 16,
) -> list[dict]:
    """A reproducible stream of ``/query`` payloads over one cube.

    Args:
        rng: Seeded generator — the only randomness source.
        shape: The target cube's shape.
        count: Requests to generate.
        cube: Registered cube name.
        ops: Operators drawn uniformly per request.
        hot_fraction: Fraction of requests that re-ask a box from the
            hot pool (cache-hit traffic); ``0`` makes every box fresh.
        hot_pool: Size of the hot pool the repeated asks draw from.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )

    def random_ranges() -> list[list[int]]:
        ranges = []
        for extent in shape:
            lo = int(rng.integers(0, extent))
            hi = int(rng.integers(lo, extent))
            ranges.append([lo, hi])
        return ranges

    pool = [random_ranges() for _ in range(max(1, hot_pool))]
    payloads = []
    for _ in range(count):
        if hot_fraction and rng.random() < hot_fraction:
            ranges = pool[int(rng.integers(0, len(pool)))]
        else:
            ranges = random_ranges()
        op = str(ops[int(rng.integers(0, len(ops)))])
        payloads.append(
            {"cube": cube, "op": op, "ranges": ranges}
        )
    return payloads


@dataclass(frozen=True)
class DriftPhase:
    """One phase of a drifting workload (the adaptive loop's test load).

    Attributes:
        requests: Requests this phase emits before the next one starts.
        hot_dims: Dimensions queries constrain with a proper sub-range
            this phase; every other dimension is left at ``all``.  This
            is what maps the phase's traffic onto one hot cuboid — a
            phase shift moves the workload to a *different* cuboid,
            which is exactly the drift a frozen §9 plan cannot follow.
        update_fraction: Fraction of requests that are ``/update``
            posts instead of queries (shifts the query/update mix the
            Theorem-2 maintenance term responds to).
        range_scale: Hot-dimension range length as a fraction of the
            extent (drawn around this scale, so Table-1 statistics stay
            phase-stable without being constant).
        ops: Query operators drawn uniformly within the phase.
    """

    requests: int
    hot_dims: tuple[int, ...]
    update_fraction: float = 0.0
    range_scale: float = 0.4
    ops: tuple[str, ...] = ("sum",)

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not 0.0 <= self.update_fraction <= 1.0:
            raise ValueError(
                f"update_fraction must be in [0, 1], "
                f"got {self.update_fraction}"
            )
        if not 0.0 < self.range_scale <= 1.0:
            raise ValueError(
                f"range_scale must be in (0, 1], got {self.range_scale}"
            )


def generate_drifting_requests(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    phases: Sequence[DriftPhase],
    *,
    cube: str = "demo",
    updates_per_request: int = 4,
) -> list[dict]:
    """A seeded multi-phase stream whose hot cuboid and update mix drift.

    Each payload is *tagged* — ``{"path": ..., "body": ...}`` — so
    :func:`run_load` can interleave ``/update`` posts with queries.
    Query bodies constrain the phase's ``hot_dims`` with sub-ranges of
    roughly ``range_scale`` of each extent and leave every other
    dimension at ``all``; update bodies carry ``updates_per_request``
    random point deltas.  Same ``rng`` seed + phases → same stream,
    which is what lets ``benchmarks/bench_adaptive.py`` compare an
    adaptive service against a frozen one on identical traffic.
    """
    for phase in phases:
        for dim in phase.hot_dims:
            if not 0 <= dim < len(shape):
                raise ValueError(
                    f"hot dim {dim} out of range for {len(shape)}-d cube"
                )
    payloads: list[dict] = []
    for phase in phases:
        hot = set(phase.hot_dims)
        for _ in range(phase.requests):
            if phase.update_fraction and (
                rng.random() < phase.update_fraction
            ):
                updates = [
                    {
                        "index": [
                            int(rng.integers(0, extent))
                            for extent in shape
                        ],
                        "delta": int(rng.integers(1, 10)),
                    }
                    for _ in range(max(1, updates_per_request))
                ]
                payloads.append(
                    {
                        "path": "/update",
                        "body": {"cube": cube, "updates": updates},
                    }
                )
                continue
            ranges: list[object] = []
            for dim, extent in enumerate(shape):
                if dim not in hot:
                    ranges.append(None)
                    continue
                length = max(
                    1,
                    min(
                        extent,
                        int(
                            round(
                                phase.range_scale
                                * extent
                                * float(rng.uniform(0.5, 1.5))
                            )
                        ),
                    ),
                )
                lo = int(rng.integers(0, extent - length + 1))
                ranges.append([lo, lo + length - 1])
            op = str(phase.ops[int(rng.integers(0, len(phase.ops)))])
            payloads.append(
                {
                    "path": "/query",
                    "body": {"cube": cube, "op": op, "ranges": ranges},
                }
            )
    return payloads


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run."""

    completed: int = 0
    shed: int = 0
    timeouts: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def percentile_ms(self, q: float) -> float:
        """Latency percentile (milliseconds) over completed requests."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q) * 1e3)

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99)

    def summary(self) -> dict:
        """A plain-dict report for benchmark JSON."""
        return {
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


async def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    *,
    concurrency: int = 8,
) -> LoadReport:
    """Replay ``payloads`` over ``concurrency`` keep-alive connections.

    Each worker owns one connection and pulls from a shared queue, so
    the stream's arrival pattern is work-conserving: the service always
    sees ``concurrency`` outstanding requests until the stream drains.
    Shed requests (429) and deadline expiries (504) are counted, not
    raised; only completed requests contribute latency samples.

    Payloads come in two spellings: a plain ``/query`` body (what
    :func:`generate_requests` emits) or the tagged
    ``{"path": ..., "body": ...}`` form of
    :func:`generate_drifting_requests`, which lets one stream mix
    queries and ``/update`` posts.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    queue: asyncio.Queue[dict] = asyncio.Queue()
    for payload in payloads:
        queue.put_nowait(payload)
    report = LoadReport()

    async def worker() -> None:
        client = ServingClient(host, port)
        try:
            await client.connect()
            while True:
                try:
                    payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                path = payload.get("path", "/query")
                body = payload.get("body", payload)
                started = time.perf_counter()
                try:
                    await client.request("POST", path, body)
                except ServingClientError as exc:
                    if exc.status == 429:
                        report.shed += 1
                    elif exc.status == 504:
                        report.timeouts += 1
                    else:
                        report.errors += 1
                    continue
                report.latencies_s.append(
                    time.perf_counter() - started
                )
                report.completed += 1
        finally:
            await client.aclose()

    started = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    report.duration_s = time.perf_counter() - started
    return report
