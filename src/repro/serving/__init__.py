"""The serving layer: an async OLAP range-query service.

Everything the paper's structures answer offline, this package serves
online: register cubes (with their §9 materialized plans, prefix-sum /
max-tree indexes, and naive fallbacks) on a :class:`QueryService`, bind
it to a port with :class:`ServingServer`, and range
sum/count/average/max/min plus slice and roll-up queries flow over a
stdlib-only JSON-over-HTTP surface.

In front of the tiers sit the pieces a real service needs: admission
control with explicit overload shedding, an exact LRU result cache
invalidated by update generations, and a request coalescer that merges
concurrent scalar queries into single kernel-backed batch gathers.
See ``docs/SERVING.md`` for the tour.
"""

from repro.serving.adaptive import AdaptiveController, SwapInFlight
from repro.serving.admission import AdmissionController
from repro.serving.cache import CacheKey, ResultCache, cache_key
from repro.serving.client import ServingClient, ServingClientError
from repro.serving.coalesce import COALESCIBLE, RequestCoalescer
from repro.serving.errors import (
    BadRequest,
    CubeInconsistent,
    Overloaded,
    QueryTimeout,
    ServingError,
    UnknownResource,
    Unsupported,
)
from repro.serving.http import ServingServer
from repro.serving.loadgen import (
    DriftPhase,
    LoadReport,
    generate_drifting_requests,
    generate_requests,
    run_load,
)
from repro.serving.router import SCALAR_OPS, TIERS, TieredRouter
from repro.serving.rwlock import ReadWriteLock
from repro.serving.service import (
    QueryService,
    ServeConfig,
    ServedCube,
)

__all__ = [
    "COALESCIBLE",
    "SCALAR_OPS",
    "TIERS",
    "AdaptiveController",
    "AdmissionController",
    "BadRequest",
    "CacheKey",
    "CubeInconsistent",
    "DriftPhase",
    "LoadReport",
    "Overloaded",
    "QueryService",
    "QueryTimeout",
    "ReadWriteLock",
    "RequestCoalescer",
    "ResultCache",
    "ServeConfig",
    "ServedCube",
    "ServingClient",
    "ServingClientError",
    "ServingError",
    "ServingServer",
    "SwapInFlight",
    "TieredRouter",
    "UnknownResource",
    "Unsupported",
    "cache_key",
    "generate_drifting_requests",
    "generate_requests",
    "run_load",
]
