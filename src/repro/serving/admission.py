"""Admission control: bounded concurrency, bounded queue, explicit shed.

Without admission control an overloaded asyncio service degrades the
worst possible way — every request is accepted, queues grow without
bound, and *all* latencies (including already-running requests) head
toward the timeout together.  The controller enforces the classic
two-knob policy instead:

* at most ``max_inflight`` requests execute concurrently;
* at most ``max_queue`` more may wait for a slot;
* anything beyond that is shed immediately with
  :class:`~repro.serving.errors.Overloaded` (HTTP 429), keeping the
  latency of *admitted* requests bounded.

Slots hand over directly: a finishing request wakes the oldest waiter
without the in-flight count ever dipping, so the service runs at full
concurrency under sustained load.  Single event loop, no locks.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.serving.errors import Overloaded


class AdmissionController:
    """A counting semaphore with a bounded wait queue and shed stats.

    Args:
        max_inflight: Concurrent requests allowed past admission.
        max_queue: Requests allowed to wait for a slot; ``0`` sheds the
            moment all slots are busy.
    """

    def __init__(self, max_inflight: int = 64, max_queue: int = 256) -> None:
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_inflight = int(max_inflight)
        self.max_queue = int(max_queue)
        self._inflight = 0
        self._waiters: deque[asyncio.Future[None]] = deque()
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.timeouts = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    @property
    def inflight(self) -> int:
        """Requests currently holding a slot."""
        return self._inflight

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    async def acquire(self) -> None:
        """Take an execution slot, waiting in the bounded queue if needed.

        Raises:
            Overloaded: Both the in-flight set and the queue are full —
                the request is shed without waiting.
        """
        if self._inflight < self.max_inflight:
            self._inflight += 1
            self.admitted += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            return
        if len(self._waiters) >= self.max_queue:
            self.shed += 1
            raise Overloaded(
                f"{self._inflight} requests in flight and "
                f"{len(self._waiters)} queued; try again later"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future[None] = loop.create_future()
        self._waiters.append(future)
        self.peak_queued = max(self.peak_queued, len(self._waiters))
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was handed to us in the same tick we were
                # cancelled (e.g. a deadline firing): pass it straight
                # on so it is not leaked.
                self._handoff()
            else:
                try:
                    self._waiters.remove(future)
                except ValueError:
                    pass
            raise
        self.admitted += 1

    def release(self) -> None:
        """Return a slot: wake the oldest live waiter or free the slot."""
        self.completed += 1
        self._handoff()

    def _handoff(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                future.set_result(None)
                return  # direct hand-off; in-flight count unchanged
        self._inflight -= 1

    async def __aenter__(self) -> AdmissionController:
        await self.acquire()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        self.release()

    def note_timeout(self) -> None:
        """Record one admitted request cut off by its deadline."""
        self.timeouts += 1

    def stats(self) -> dict:
        """A plain-dict snapshot for the ``/stats`` endpoint."""
        return {
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queued": len(self._waiters),
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "timeouts": self.timeouts,
            "peak_inflight": self.peak_inflight,
            "peak_queued": self.peak_queued,
        }
