"""The serving error taxonomy, mapped onto HTTP status codes.

Every failure the service can produce deliberately — malformed input,
unknown cube, shed load, expired deadline — is a :class:`ServingError`
subclass carrying its wire status.  The HTTP layer turns any of them
into a JSON error body; anything *else* escaping a handler is a bug and
surfaces as a 500 so the differential harness and the overload tests can
tell "declined by design" from "crashed".
"""

from __future__ import annotations


class ServingError(Exception):
    """Base class for all deliberate service-side failures."""

    #: HTTP status the error maps to on the wire.
    status = 500
    #: Stable machine-readable error code for clients.
    code = "internal"

    def payload(self) -> dict:
        """The JSON body the HTTP layer writes for this error."""
        return {"error": self.code, "message": str(self)}


class BadRequest(ServingError):
    """Malformed payload: bad JSON, bad ranges, unknown operator."""

    status = 400
    code = "bad_request"


class UnknownResource(ServingError):
    """Unknown endpoint or cube name."""

    status = 404
    code = "not_found"


class Unsupported(ServingError):
    """A valid request the cube's tiers cannot answer (e.g. MAX on a
    cube registered without a max index and without a fallback)."""

    status = 422
    code = "unsupported"


class Overloaded(ServingError):
    """Admission control shed the request: in-flight and queue full.

    The 429 of the serving layer — the explicit signal that overload is
    being degraded gracefully instead of queueing without bound.
    """

    status = 429
    code = "overloaded"


class QueryTimeout(ServingError):
    """The per-request deadline expired (queue wait + execution)."""

    status = 504
    code = "timeout"


class CubeInconsistent(ServingError):
    """An update failed partway and the cube's tiers may disagree.

    Delta validation makes this unreachable for the failure modes the
    service anticipates (dtype/overflow rejections happen before any
    tier is touched), but if a tier structure still raises mid-apply the
    cube is quarantined: better an explicit 500 on every request than
    answers that depend on which tier a query happens to route to.
    """

    status = 500
    code = "cube_inconsistent"
