"""CLI entry point: ``python -m repro.serving``.

Stands up a :class:`~repro.serving.QueryService` with one or more
seeded demo cubes (or whatever shapes you pass via ``--cube``) and
serves until interrupted.  ``--logbook PATH`` records all served
traffic in the §9 advisor workload format and writes it on shutdown —
the *serve → log → re-tune* loop's first leg.

``--ingest NAME=PATH`` registers a cube built by the streaming
ingestion subsystem (:mod:`repro.ingest`) from a CSV/Arrow/Parquet
fact file instead of seeded random data; ``--ingest-cuboids`` /
``--ingest-budget-mb`` / ``--ingest-spill`` forward to the ingest
plan, and an over-budget build spills through a memmap and is served
straight from its spill files (the base cube is adopted, not copied).
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import numpy as np

from repro.serving.adaptive import AdaptiveController
from repro.serving.http import ServingServer
from repro.serving.service import QueryService, ServeConfig


def _parse_cube(spec: str) -> tuple[str, tuple[int, ...]]:
    """``name=16x16x8`` → ``("name", (16, 16, 8))``."""
    name, _, dims = spec.partition("=")
    if not name or not dims:
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} must look like name=16x16x8"
        )
    try:
        shape = tuple(int(d) for d in dims.lower().split("x"))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} has a non-integer extent"
        ) from exc
    if not shape or any(d < 1 for d in shape):
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} needs positive extents"
        )
    return name, shape


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve OLAP range aggregates over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--cube",
        type=_parse_cube,
        action="append",
        metavar="NAME=SHAPE",
        help="cube to register with seeded random data, e.g. "
        "sales=64x64x16 (repeatable; default demo=32x32x16)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the demo cubes' data (default 0)",
    )
    parser.add_argument(
        "--ingest",
        action="append",
        metavar="NAME=PATH",
        default=None,
        help="register a cube ingested from a data file (CSV always; "
        "Arrow/Parquet with pyarrow), e.g. sales=facts.csv "
        "(repeatable)",
    )
    parser.add_argument(
        "--ingest-cuboids",
        metavar="KEYS",
        default="",
        help='§9 cuboids to accumulate during ingest, e.g. "0,1;1,2"',
    )
    parser.add_argument(
        "--ingest-budget-mb",
        type=float,
        default=None,
        help="accumulator budget for ingested cubes; exceeding it "
        "spills to --ingest-spill",
    )
    parser.add_argument(
        "--ingest-spill",
        metavar="DIR",
        default=None,
        help="spill directory for over-budget ingests",
    )
    parser.add_argument(
        "--logbook",
        metavar="PATH",
        default=None,
        help="record served traffic and write the §9 advisor "
        "workload JSON here on shutdown",
    )
    parser.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=2.0,
        help="scalar-coalescing window (0 disables; default 2ms)",
    )
    parser.add_argument("--cache-capacity", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--max-queue", type=int, default=256)
    parser.add_argument("--timeout-s", type=float, default=30.0)
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the adaptive physical-design controller: re-plan "
        "each cube from its live workload window and hot-swap "
        "improved §9 plans with zero downtime",
    )
    parser.add_argument(
        "--adaptive-interval-s",
        type=float,
        default=5.0,
        help="seconds between adaptive advisory cycles (default 5)",
    )
    parser.add_argument(
        "--adaptive-budget",
        type=float,
        default=None,
        help="auxiliary-cell budget for adaptive plans "
        "(default: each cube's own cell count)",
    )
    return parser


def _register_ingested(
    service: QueryService,
    name: str,
    path: str,
    args: argparse.Namespace,
) -> None:
    """Build one cube from a fact file and register the result.

    Spilled builds register with ``cuboid_set=`` so the memmap base is
    adopted without a copy; the ingest's root backend becomes the
    cube's design backend, letting adaptive swaps reclaim superseded
    plans into the same spill directory.
    """
    from repro.ingest import (
        IngestPlan,
        infer_shape,
        ingest,
        open_batches,
        plan_cuboids,
    )

    shape = infer_shape(open_batches(path))
    keys = [
        tuple(int(p) for p in group.split(","))
        for group in args.ingest_cuboids.split(";")
        if group.strip()
    ]
    plan = IngestPlan(
        shape=shape,
        cuboids=plan_cuboids(shape, keys),
        budget_bytes=(
            None
            if args.ingest_budget_mb is None
            else int(args.ingest_budget_mb * (1 << 20))
        ),
        spill_directory=args.ingest_spill,
    )
    result = ingest(open_batches(path), plan)
    extra: dict = {}
    if result.spilled:
        # No indexed tier for an out-of-core cube: the engine's default
        # structures would copy the whole base back onto the heap.  The
        # materialized cuboids (plus the fallback scan over the mapped
        # base) serve it.
        extra["engine"] = None
    service.register_cube(
        name,
        cuboid_set=result.cuboid_set,
        backend=result.backend,
        **extra,
    )
    print(
        f"ingested cube {name!r} from {path}: shape={shape}, "
        f"{result.rows} rows, {len(plan.cuboids)} cuboids, "
        f"spilled={result.spilled}",
        file=sys.stderr,
    )


async def _serve(args: argparse.Namespace) -> None:
    config = ServeConfig(
        coalesce_window_s=args.coalesce_window_ms / 1e3,
        cache_capacity=args.cache_capacity,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        timeout_s=args.timeout_s,
        logbook_path=args.logbook,
        adaptive_interval_s=args.adaptive_interval_s,
        adaptive_space_budget=args.adaptive_budget,
    )
    service = QueryService(config)
    rng = np.random.default_rng(args.seed)
    cubes = args.cube or ([] if args.ingest else [("demo", (32, 32, 16))])
    for name, shape in cubes:
        data = rng.integers(0, 100, size=shape, dtype=np.int64)
        service.register_cube(name, data)
        print(
            f"registered cube {name!r} shape={shape} "
            f"dtype=int64 (seeded)",
            file=sys.stderr,
        )
    for spec in args.ingest or []:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(
                f"--ingest spec {spec!r} must look like name=path.csv"
            )
        _register_ingested(service, name, path, args)
    server = ServingServer(service, host=args.host, port=args.port)
    await server.start()
    controller = None
    if args.adaptive:
        controller = AdaptiveController(service)
        await controller.start()
        print(
            f"adaptive controller on (every "
            f"{config.adaptive_interval_s:g}s; GET /design to inspect)",
            file=sys.stderr,
        )
    print(
        f"serving on http://{server.host}:{server.port} "
        f"(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if controller is not None:
            await controller.stop()
            stats = controller.stats()
            print(
                f"adaptive controller: {stats['cycles']} cycles, "
                f"{stats['swaps']} swaps, {stats['holds']} holds",
                file=sys.stderr,
            )
        await server.stop()
        if args.logbook:
            print(f"logbook written to {args.logbook}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
