"""CLI entry point: ``python -m repro.serving``.

Stands up a :class:`~repro.serving.QueryService` with one or more
seeded demo cubes (or whatever shapes you pass via ``--cube``) and
serves until interrupted.  ``--logbook PATH`` records all served
traffic in the §9 advisor workload format and writes it on shutdown —
the *serve → log → re-tune* loop's first leg.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import numpy as np

from repro.serving.adaptive import AdaptiveController
from repro.serving.http import ServingServer
from repro.serving.service import QueryService, ServeConfig


def _parse_cube(spec: str) -> tuple[str, tuple[int, ...]]:
    """``name=16x16x8`` → ``("name", (16, 16, 8))``."""
    name, _, dims = spec.partition("=")
    if not name or not dims:
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} must look like name=16x16x8"
        )
    try:
        shape = tuple(int(d) for d in dims.lower().split("x"))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} has a non-integer extent"
        ) from exc
    if not shape or any(d < 1 for d in shape):
        raise argparse.ArgumentTypeError(
            f"cube spec {spec!r} needs positive extents"
        )
    return name, shape


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve OLAP range aggregates over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787)
    parser.add_argument(
        "--cube",
        type=_parse_cube,
        action="append",
        metavar="NAME=SHAPE",
        help="cube to register with seeded random data, e.g. "
        "sales=64x64x16 (repeatable; default demo=32x32x16)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the demo cubes' data (default 0)",
    )
    parser.add_argument(
        "--logbook",
        metavar="PATH",
        default=None,
        help="record served traffic and write the §9 advisor "
        "workload JSON here on shutdown",
    )
    parser.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=2.0,
        help="scalar-coalescing window (0 disables; default 2ms)",
    )
    parser.add_argument("--cache-capacity", type=int, default=1024)
    parser.add_argument("--max-inflight", type=int, default=64)
    parser.add_argument("--max-queue", type=int, default=256)
    parser.add_argument("--timeout-s", type=float, default=30.0)
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="run the adaptive physical-design controller: re-plan "
        "each cube from its live workload window and hot-swap "
        "improved §9 plans with zero downtime",
    )
    parser.add_argument(
        "--adaptive-interval-s",
        type=float,
        default=5.0,
        help="seconds between adaptive advisory cycles (default 5)",
    )
    parser.add_argument(
        "--adaptive-budget",
        type=float,
        default=None,
        help="auxiliary-cell budget for adaptive plans "
        "(default: each cube's own cell count)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    config = ServeConfig(
        coalesce_window_s=args.coalesce_window_ms / 1e3,
        cache_capacity=args.cache_capacity,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        timeout_s=args.timeout_s,
        logbook_path=args.logbook,
        adaptive_interval_s=args.adaptive_interval_s,
        adaptive_space_budget=args.adaptive_budget,
    )
    service = QueryService(config)
    rng = np.random.default_rng(args.seed)
    cubes = args.cube or [("demo", (32, 32, 16))]
    for name, shape in cubes:
        data = rng.integers(0, 100, size=shape, dtype=np.int64)
        service.register_cube(name, data)
        print(
            f"registered cube {name!r} shape={shape} "
            f"dtype=int64 (seeded)",
            file=sys.stderr,
        )
    server = ServingServer(service, host=args.host, port=args.port)
    await server.start()
    controller = None
    if args.adaptive:
        controller = AdaptiveController(service)
        await controller.start()
        print(
            f"adaptive controller on (every "
            f"{config.adaptive_interval_s:g}s; GET /design to inspect)",
            file=sys.stderr,
        )
    print(
        f"serving on http://{server.host}:{server.port} "
        f"(Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        if controller is not None:
            await controller.stop()
            stats = controller.stats()
            print(
                f"adaptive controller: {stats['cycles']} cycles, "
                f"{stats['swaps']} swaps, {stats['holds']} holds",
                file=sys.stderr,
            )
        await server.stop()
        if args.logbook:
            print(f"logbook written to {args.logbook}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
