"""Zero-downtime adaptive physical design: the loop's actuator.

The closed loop this module completes:

1. **observe** — every served query and update lands in the cube's
   :class:`~repro.query.observer.WorkloadObserver` (a bounded,
   decay-weighted window over live traffic);
2. **decide** — each cycle, :func:`~repro.optimizer.advisor.re_advise`
   re-runs the §9 selection against the window with the incumbent plan
   as warm start and Theorem-2 update costs in the objective, yielding a
   :class:`~repro.optimizer.advisor.DesignDelta` gated by hysteresis;
3. **actuate** — when the delta clears the gate, the controller builds
   the candidate :class:`~repro.optimizer.materialize.MaterializedCuboidSet`
   *off the event loop* and hot-swaps it in without dropping a request.

The hot-swap protocol (the part that makes "zero downtime" true rather
than aspirational):

* under the cube's **read lock**: copy the base cube and switch on
  *pending-update recording* (``cube.pending_design_updates = []``).
  The read lock excludes writers, so the copy and the recording switch
  are atomic with respect to ``/update`` — no delta can land between
  them and be lost;
* **off-loop build**: the candidate set is built from the copy on the
  service's worker pool (the threaded kernel's pinned pool when one is
  registered), so queries and updates keep flowing during the seconds a
  large build can take.  Any ``/update`` accepted meanwhile mutates the
  *live* tiers normally and is also appended to the recording list
  (under the write lock, inside :meth:`QueryService._apply_update`);
* under the **write lock**: replay the recorded updates into the new
  set, install it as ``cube.cuboids``, bump the generation, and
  invalidate the result cache.  The write lock drains in-flight reads
  (including coalesced batches running on pool threads), so no reader
  ever observes half a swap, and replay-then-install means the new plan
  answers are bit-identical to the old plan's from its first request —
  the invariant ``tests/serving/test_adaptive.py`` pins down.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from repro.optimizer.advisor import DesignDelta
from repro.optimizer.materialize import MaterializedCuboidSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.service import QueryService, ServedCube


class SwapInFlight(RuntimeError):
    """A second actuation was attempted while one is still building."""


class AdaptiveController:
    """Periodically re-plan every served cube and hot-swap improvements.

    Args:
        service: The service whose cubes this controller tunes.
        interval_s: Seconds between advisory cycles (default: the
            service config's ``adaptive_interval_s``).
        space_budget: Planning budget override (default: config, which
            itself defaults to each cube's own cell count).
        hysteresis / min_weight / max_block: Per-knob overrides of the
            service config (see :class:`~repro.serving.ServeConfig`).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  :meth:`step` runs one advisory cycle for
    one cube synchronously-awaitable, which is what the tests drive
    instead of sleeping through wall-clock intervals.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        interval_s: float | None = None,
        space_budget: float | None = None,
        hysteresis: float | None = None,
        min_weight: float | None = None,
        max_block: int | None = None,
    ) -> None:
        self.service = service
        config = service.config
        self.interval_s = (
            config.adaptive_interval_s if interval_s is None else interval_s
        )
        self.space_budget = space_budget
        self.hysteresis = hysteresis
        self.min_weight = min_weight
        self.max_block = max_block
        self.cycles = 0
        self.swaps = 0
        self.holds = 0
        self.last_error: str | None = None
        self._task: asyncio.Task[None] | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Spawn the background advisory loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.create_task(
                self._loop(), name="repro-adaptive"
            )

    async def stop(self) -> None:
        """Cancel the loop and wait for it to unwind."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def __aenter__(self) -> AdaptiveController:
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            await self.run_cycle()

    # ------------------------------------------------------------------
    # One advisory cycle
    # ------------------------------------------------------------------

    async def run_cycle(self) -> dict[str, DesignDelta]:
        """Advise (and possibly swap) every healthy cube once.

        A failure on one cube is recorded in :attr:`last_error` and does
        not stop the cycle for the others — a controller crash must
        never take query serving down with it.
        """
        deltas: dict[str, DesignDelta] = {}
        for name in list(self.service.cubes):
            try:
                delta = await self.step(name)
            except Exception as exc:  # noqa: BLE001 — isolate per cube
                self.last_error = f"{name}: {type(exc).__name__}: {exc}"
                continue
            if delta is not None:
                deltas[name] = delta
        self.cycles += 1
        return deltas

    async def step(self, name: str) -> DesignDelta | None:
        """One observe→decide→(maybe) actuate pass for one cube.

        Returns the delta the advisor produced, or ``None`` when the
        cube is unknown, quarantined, unobserved, or mid-swap already.
        """
        cube = self.service.cubes.get(name)
        if (
            cube is None
            or not cube.healthy
            or cube.observer is None
            or cube.pending_design_updates is not None
        ):
            return None
        snapshot = cube.observer.snapshot()
        loop = asyncio.get_running_loop()
        delta = await loop.run_in_executor(
            self.service._ensure_executor(),
            lambda: self.service.plan_delta(
                cube,
                snapshot,
                space_budget=self.space_budget,
                hysteresis=self.hysteresis,
                max_block=self.max_block,
                min_query_weight=self.min_weight,
            ),
        )
        if delta.should_swap:
            await self.actuate(cube, delta)
        else:
            self.holds += 1
        return delta

    # ------------------------------------------------------------------
    # Actuation (the hot swap)
    # ------------------------------------------------------------------

    async def actuate(self, cube: ServedCube, delta: DesignDelta) -> None:
        """Build ``delta.candidate`` off-loop and install it atomically.

        See the module docstring for the full protocol.  Raises
        :class:`SwapInFlight` if a build for this cube is already
        running; any build failure clears the recording switch and
        re-raises, leaving the incumbent serving untouched.
        """
        if cube.pending_design_updates is not None:
            raise SwapInFlight(
                f"cube {cube.name!r} already has a rebuild in flight"
            )
        async with cube.rwlock.read_locked():
            # Atomic with respect to /update: writers are excluded, so
            # every update after this point is recorded for replay.
            base_snapshot = cube.base.copy()
            cube.pending_design_updates = []
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        # Each rebuild allocates through its own subscope of the cube's
        # design backend, so the plan it supersedes can be released
        # (spill files deleted, handle tracking dropped) the moment the
        # swap lands — without per-swap scoping, a long-lived adaptive
        # service leaks one plan's worth of memmap handles and on-disk
        # bytes per swap.
        build_backend = None
        if cube.design_backend is not None:
            cube.design_generation += 1
            build_backend = cube.design_backend.subscope(
                f"design-g{cube.design_generation}"
            )
        try:
            candidate = await loop.run_in_executor(
                self.service._ensure_executor(),
                lambda: MaterializedCuboidSet(
                    base_snapshot, delta.candidate, backend=build_backend
                ),
            )
        except BaseException:
            cube.pending_design_updates = None
            if build_backend is not None:
                build_backend.release()
            raise
        build_s = time.perf_counter() - started
        async with cube.rwlock.write_locked():
            pending = cube.pending_design_updates or []
            if pending:
                candidate.apply_updates(pending)
            cube.pending_design_updates = None
            superseded = cube.cuboids
            cube.cuboids = candidate
            cube.generation += 1
            self.service.cache.invalidate_cube(cube.name)
        # Reclaim the superseded plan outside the write lock: release
        # only unlinks files and drops references (readers that raced
        # the swap keep their mapped pages until their refs die), so it
        # needs no exclusion.
        released_files = 0 if superseded is None else superseded.release()
        self.swaps += 1
        cube.swap_history.append(
            {
                "at": time.time(),
                "generation": cube.generation,
                "build_s": build_s,
                "replayed_updates": len(pending),
                "released_files": released_files,
                "plan": [
                    {"key": list(m.key), "block_size": m.block_size}
                    for m in delta.candidate
                ],
                "builds": len(delta.builds),
                "drops": len(delta.drops),
                "resizes": len(delta.resizes),
                "gain": delta.gain,
                "improvement_ratio": delta.improvement_ratio,
            }
        )

    def stats(self) -> dict:
        """Controller counters (surfaced by ``python -m repro.serving``)."""
        return {
            "interval_s": self.interval_s,
            "cycles": self.cycles,
            "swaps": self.swaps,
            "holds": self.holds,
            "running": self._task is not None and not self._task.done(),
            "last_error": self.last_error,
        }
