"""The ingest plan: what to build, in what dtype, under what budget.

An :class:`IngestPlan` names the cube shape, the measure dtype, and the
set of §9 cuboids whose dense cells the one-pass accumulators should
populate alongside the base cube.  It also owns the *accumulator memory
model*: :meth:`IngestPlan.accumulator_bytes` prices the resident cost of
every accumulator up front, and :meth:`IngestPlan.make_backend` spills
the whole build through a :class:`~repro.index.MemmapBackend` whenever
that price exceeds ``budget_bytes`` — so a cube larger than RAM (or
larger than the budget an operator grants the ingest) builds with
bounded resident footprint instead of an OOM kill mid-scan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.index.backend import ArrayBackend, MemmapBackend, MemoryBackend
from repro.optimizer.cuboid_selection import Materialization


def group_by_dtype(measure_dtype: object) -> np.dtype:
    """The dtype of a cuboid's group-by cells for a given measure dtype.

    Matches ``base.sum(axis=dropped)`` exactly — numpy's default sum
    promotion (``int8 → int64``, ``uint8 → uint64``, floats unchanged) —
    so a streamed cuboid accumulator is bit-compatible with the arrays
    :class:`~repro.optimizer.materialize.MaterializedCuboidSet` computes
    from an in-memory base cube.
    """
    return np.zeros((1,), dtype=np.dtype(measure_dtype)).sum(axis=0).dtype


@dataclass(frozen=True)
class IngestPlan:
    """One streaming build: shape, measure, cuboids, memory budget.

    Attributes:
        shape: The base cube's shape (records outside it are an
            :class:`~repro.ingest.IngestError`).
        cuboids: §9 materializations whose group-by cells the single
            pass accumulates alongside the base cube (aggregation is
            SUM, exactly like
            :class:`~repro.optimizer.materialize.MaterializedCuboidSet`).
        measure_dtype: Base-cube dtype records accumulate into
            (duplicate records for one cell add up, so pick a dtype with
            headroom; integer kinds ``iuf`` only).
        budget_bytes: Resident-accumulator budget; when the plan's
            accumulators outgrow it the build spills through a
            :class:`~repro.index.MemmapBackend` under
            ``spill_directory``.  ``None`` means unbounded (in-memory).
        spill_directory: Where spilled builds put their ``.npy`` files;
            required when a budgeted plan actually spills.
        batch_rows: Advisory batch size for sources the plan opens.
    """

    shape: tuple[int, ...]
    cuboids: tuple[Materialization, ...] = ()
    measure_dtype: str = "int64"
    budget_bytes: int | None = None
    spill_directory: str | os.PathLike[str] | None = field(
        default=None, compare=False
    )
    batch_rows: int = 65536

    def __post_init__(self) -> None:
        shape = tuple(int(n) for n in self.shape)
        if not shape or any(n < 1 for n in shape):
            raise ValueError(f"shape must have positive extents, got {shape}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "cuboids", tuple(self.cuboids))
        dtype = np.dtype(self.measure_dtype)
        if dtype.kind not in "iuf":
            raise ValueError(
                f"measure dtype must be integer or float, got {dtype}"
            )
        ndim = len(shape)
        for chosen in self.cuboids:
            if not chosen.key:
                raise ValueError("cannot accumulate the empty cuboid")
            if any(not 0 <= j < ndim for j in chosen.key):
                raise ValueError(
                    f"cuboid {chosen.key} exceeds a {ndim}-d cube"
                )

    # ------------------------------------------------------------------
    # Accumulator memory model
    # ------------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def base_dtype(self) -> np.dtype:
        """The base accumulator's dtype (= the measure dtype)."""
        return np.dtype(self.measure_dtype)

    @property
    def group_dtype(self) -> np.dtype:
        """The cuboid accumulators' dtype (numpy sum promotion)."""
        return group_by_dtype(self.base_dtype)

    def cuboid_shape(self, key: Sequence[int]) -> tuple[int, ...]:
        """A cuboid's dense group-by shape in base coordinates."""
        return tuple(self.shape[j] for j in key)

    def accumulator_bytes(self) -> int:
        """Total bytes of every dense accumulator the plan allocates.

        The base cube in the measure dtype plus each cuboid's group-by
        cells in the sum-promoted dtype — the resident price of the
        one-pass build before any finalize structure is added.
        """
        total = int(np.prod(self.shape)) * self.base_dtype.itemsize
        ndim = self.ndim
        for chosen in self.cuboids:
            dtype = (
                self.base_dtype
                if len(chosen.key) == ndim
                else self.group_dtype
            )
            total += int(np.prod(self.cuboid_shape(chosen.key))) * dtype.itemsize
        return total

    @property
    def spills(self) -> bool:
        """Whether the accumulators outgrow the configured budget."""
        return (
            self.budget_bytes is not None
            and self.accumulator_bytes() > self.budget_bytes
        )

    def make_backend(self) -> ArrayBackend:
        """The backend the memory model selects for this build."""
        if not self.spills:
            return MemoryBackend()
        if self.spill_directory is None:
            raise ValueError(
                f"plan needs {self.accumulator_bytes()} accumulator "
                f"bytes, over the {self.budget_bytes}-byte budget, but "
                "no spill_directory is configured"
            )
        return MemmapBackend(Path(self.spill_directory), tag="ingest")


def plan_cuboids(
    shape: Sequence[int],
    keys: Sequence[Sequence[int]],
    block_size: int = 8,
) -> tuple[Materialization, ...]:
    """Convenience: uniform-block materializations for a list of keys.

    The §9 selector produces richer plans; this helper covers the CLI
    and test cases where the cuboid list is given by hand.
    """
    shape = tuple(int(n) for n in shape)
    chosen = []
    for key in keys:
        key_t = tuple(sorted(int(j) for j in key))
        cells = 1.0
        for j in key_t:
            cells *= -(-shape[j] // block_size)  # ceil division
        chosen.append(
            Materialization(key=key_t, block_size=int(block_size), space=cells)
        )
    return tuple(chosen)
