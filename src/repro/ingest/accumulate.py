"""One-pass dense accumulators: record batches in, cuboid cells out.

The streaming build's core trick: instead of materializing the base cube
and then scanning it once per §9 cuboid (``k + 1`` full passes), a
:class:`MultiCuboidAccumulator` scatters every record batch into the
base accumulator *and* each cuboid's group-by accumulator as it arrives.
One pass over the source populates every dense cell array; the finalize
step then runs the ordinary in-place prefix-sum construction over each
accumulator (:mod:`repro.ingest.build`).

All accumulators are allocated through an
:class:`~repro.index.ArrayBackend`, so a plan over budget spills its
cells to ``.npy`` files and the scatter writes stream through the page
cache.  The base accumulator lives in ``backend.subscope("base")`` and
cuboid cells in ``backend.subscope("cuboids")``: a finished
:class:`~repro.optimizer.materialize.MaterializedCuboidSet` can retire
its structures without deleting the base cube's spill file, and an
aborted build can release everything it allocated without touching
sibling builds that share the caller's root backend.

Aggregation is SUM — the same aggregate
:class:`~repro.optimizer.materialize.MaterializedCuboidSet` computes
with ``base.sum(axis=dropped)`` — and the cuboid dtype matches numpy's
sum promotion (:func:`repro.ingest.plan.group_by_dtype`), so for integer
measures a streamed build is bit-identical to the in-memory one.
"""

from __future__ import annotations

import numpy as np

from repro.index.backend import ArrayBackend
from repro.ingest.batches import IngestError, RecordBatch
from repro.ingest.plan import IngestPlan


def _scatter_add(flat: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """``flat[indices] += values`` with duplicate indices accumulating.

    ``np.add.at`` is the unbuffered form — plain fancy-indexed ``+=``
    silently drops all but one contribution per duplicated cell.
    """
    np.add.at(flat, indices, values.astype(flat.dtype, copy=False))


def validate_batch(batch: RecordBatch, plan: IngestPlan) -> np.ndarray:
    """Check one batch against the plan; returns its coordinate array.

    Raises :class:`IngestError` on a dimensionality mismatch or any
    coordinate outside the cube — *before* anything is scattered, so a
    bad batch never half-applies.
    """
    coords = batch.coords
    if coords.shape[1] != plan.ndim:
        raise IngestError(
            f"batch has {coords.shape[1]}-d coordinates, plan shape "
            f"is {plan.ndim}-d"
        )
    extent = np.asarray(plan.shape, dtype=np.int64)
    out_of_range = (coords < 0) | (coords >= extent)
    if out_of_range.any():
        row = int(np.argwhere(out_of_range.any(axis=1))[0, 0])
        raise IngestError(
            f"record coordinate {tuple(int(c) for c in coords[row])} "
            f"outside cube shape {plan.shape}"
        )
    return coords


class CuboidAccumulator:
    """Dense group-by cells for one cuboid, filled batch by batch."""

    def __init__(
        self,
        name: str,
        key: tuple[int, ...],
        shape: tuple[int, ...],
        dtype: np.dtype,
        backend: ArrayBackend,
    ) -> None:
        self.key = key
        self.shape = shape
        self.cells = backend.empty(name, shape, dtype)
        self.cells[...] = 0
        self._flat = self.cells.reshape(-1)

    def absorb(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Scatter one batch (base-coordinate ``coords``) into the cells."""
        projected = coords[:, self.key]
        flat_index = np.ravel_multi_index(tuple(projected.T), self.shape)
        _scatter_add(self._flat, flat_index, values)


class MultiCuboidAccumulator:
    """The whole plan's accumulators, absorbing each batch exactly once.

    Args:
        plan: What to build (shape, cuboids, dtypes).
        backend: Root array backend; ``None`` asks the plan's memory
            model (:meth:`IngestPlan.make_backend`) to pick one.
    """

    def __init__(self, plan: IngestPlan, backend: ArrayBackend | None = None) -> None:
        self.plan = plan
        #: Whether this build created its root backend (via the plan's
        #: memory model) or was handed one the caller may be sharing
        #: with other builds — releasing a shared root would unlink
        #: *their* live spill files too.
        self.owns_backend = backend is None
        self.backend = plan.make_backend() if backend is None else backend
        #: Cuboid cells (and later their finalize structures) live in a
        #: child scope so the finished set can be retired independently
        #: of the base accumulator.
        self.cuboid_scope = self.backend.subscope("cuboids")
        #: The base accumulator gets its own child scope as well, so the
        #: abort path can tear this build down without ever calling
        #: ``release()`` on a root backend it does not own.
        self.base_scope = self.backend.subscope("base")
        self.base = self.base_scope.empty("base", plan.shape, plan.base_dtype)
        self.base[...] = 0
        self._base_flat = self.base.reshape(-1)
        self.cuboids: list[CuboidAccumulator] = []
        for chosen in plan.cuboids:
            dtype = (
                plan.base_dtype
                if len(chosen.key) == plan.ndim
                else plan.group_dtype
            )
            name = "cuboid-" + "-".join(str(j) for j in chosen.key)
            self.cuboids.append(
                CuboidAccumulator(
                    name,
                    chosen.key,
                    plan.cuboid_shape(chosen.key),
                    dtype,
                    self.cuboid_scope,
                )
            )
        self.rows = 0
        self.batches = 0

    def absorb(self, batch: RecordBatch) -> None:
        """Validate one batch and scatter it into every accumulator."""
        coords = validate_batch(batch, self.plan)
        flat_index = np.ravel_multi_index(tuple(coords.T), self.plan.shape)
        _scatter_add(self._base_flat, flat_index, batch.values)
        for accumulator in self.cuboids:
            accumulator.absorb(coords, batch.values)
        self.rows += batch.rows
        self.batches += 1

    def flush(self) -> None:
        """Sync every accumulator scope's dirty pages to disk."""
        self.cuboid_scope.flush()
        self.base_scope.flush()
        self.backend.flush()

    def release(self) -> int:
        """Tear this build down (abort path): its own scopes only.

        A caller-provided root backend may be shared with sibling
        builds, so only the scopes *this* accumulator created are
        released; the root itself is released only when this build made
        it (``backend=None`` → :meth:`IngestPlan.make_backend`).
        """
        self.cuboids.clear()
        released = self.cuboid_scope.release() + self.base_scope.release()
        if self.owns_backend:
            released += self.backend.release()
        return released
