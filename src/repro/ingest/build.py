"""Driving a streaming build end to end: absorb, finalize, assemble.

:func:`ingest` is the tentpole path — **one pass** over the record
stream fills every accumulator (:mod:`repro.ingest.accumulate`), then
each cuboid's finalize step runs the ordinary registry construction over
its cells *in place* (through an :class:`~repro.index.AdoptingBackend`,
so no accumulator is copied) and the results assemble into a servable
:class:`~repro.optimizer.materialize.MaterializedCuboidSet`.

:func:`ingest_per_scan` is the honest baseline the paper-era pipeline
implies: one full pass over the source per accumulated array (the base
plus each cuboid), ``k + 1`` scans in total.  ``benchmarks/
bench_ingest.py`` races the two.

Failure atomicity: any error mid-stream (malformed batch, out-of-range
record, a source that dies halfway) releases every accumulator scope
before re-raising, so an aborted ingest leaves no partial spill files
behind.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Callable, Iterable
from typing import Any

from repro.index.backend import (
    AdoptingBackend,
    ArrayBackend,
    MemmapBackend,
)
from repro.ingest.accumulate import (
    CuboidAccumulator,
    MultiCuboidAccumulator,
    validate_batch,
)
from repro.ingest.batches import RecordBatch
from repro.ingest.plan import IngestPlan
from repro.optimizer.materialize import MaterializedCuboidSet


@dataclass
class IngestResult:
    """A finished streaming build.

    Attributes:
        cuboid_set: The servable set (its own backend is the cuboid
            scope, so ``cuboid_set.release()`` retires the structures
            without deleting the base cube's spill file).
        plan: The plan that was executed.
        backend: The *root* backend the build allocated through.  Both
            accumulator scopes are children of it, so it doubles as the
            served cube's design backend.
        base_backend: The child scope holding the base accumulator's
            spill file (``backend.subscope("base")``).
        rows: Records absorbed.
        batches: Batches absorbed.
        spilled: Whether the build went through a
            :class:`~repro.index.MemmapBackend`.
    """

    cuboid_set: MaterializedCuboidSet
    plan: IngestPlan
    backend: ArrayBackend
    base_backend: ArrayBackend
    rows: int
    batches: int
    spilled: bool

    def release(self) -> int:
        """Tear down this build: structures, base, spill files.

        Releases only the scopes the build created — never the root
        backend, which the caller may share with sibling builds.
        """
        released = self.cuboid_set.release()
        return released + self.base_backend.release()

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary for CLIs and logs."""
        return {
            "rows": self.rows,
            "batches": self.batches,
            "shape": list(self.plan.shape),
            "cuboids": [list(c.key) for c in self.plan.cuboids],
            "spilled": self.spilled,
            "accumulator_bytes": self.plan.accumulator_bytes(),
            "backend": self.backend.describe(),
            "base_backend": self.base_backend.describe(),
        }


def _finalize(
    accumulator: MultiCuboidAccumulator,
) -> tuple[MaterializedCuboidSet, AdoptingBackend]:
    """Build each cuboid's structure over its cells, without copying.

    The adopting backend hands the accumulated cells straight to the
    structure constructor (``materialize`` becomes adoption) while any
    *fresh* arrays a structure needs — a blocked-partial's positions,
    say — still allocate in the cuboid scope, so everything the finished
    set owns releases as one unit.
    """
    plan = accumulator.plan
    adopting = AdoptingBackend(accumulator.cuboid_scope)
    structures = [
        chosen.index_spec().build(acc.cells, backend=adopting)
        for chosen, acc in zip(plan.cuboids, accumulator.cuboids)
    ]
    cuboid_set = MaterializedCuboidSet.from_accumulated(
        accumulator.base, plan.cuboids, structures, backend=adopting
    )
    return cuboid_set, adopting


def ingest(
    batches: Iterable[RecordBatch],
    plan: IngestPlan,
    backend: ArrayBackend | None = None,
) -> IngestResult:
    """One pass over ``batches`` → a servable materialized cuboid set.

    Args:
        batches: Record batches (e.g. from
            :func:`repro.ingest.open_batches`).  Consumed exactly once.
        plan: What to build.
        backend: Root array backend; ``None`` lets the plan's memory
            model choose (spilling through a memmap when the
            accumulators outgrow ``plan.budget_bytes``).
    """
    accumulator = MultiCuboidAccumulator(plan, backend)
    try:
        for batch in batches:
            accumulator.absorb(batch)
        cuboid_set, adopting = _finalize(accumulator)
        accumulator.flush()
        adopting.flush()
    except BaseException:
        accumulator.release()
        raise
    return IngestResult(
        cuboid_set=cuboid_set,
        plan=plan,
        backend=accumulator.backend,
        base_backend=accumulator.base_scope,
        rows=accumulator.rows,
        batches=accumulator.batches,
        spilled=isinstance(accumulator.backend, MemmapBackend),
    )


def ingest_per_scan(
    batch_source: Callable[[], Iterable[RecordBatch]],
    plan: IngestPlan,
    backend: ArrayBackend | None = None,
) -> IngestResult:
    """The ``k + 1``-scan baseline: one full source pass per array.

    Re-opens the source once for the base cube and once per cuboid —
    what building each structure independently costs when the cube never
    fits in memory and every build must go back to the records.  Exists
    for ``benchmarks/bench_ingest.py``; production code wants
    :func:`ingest`.

    Args:
        batch_source: Zero-argument callable yielding a *fresh* batch
            iterator per call (a file path re-opened each time).
        plan: What to build.
        backend: Root backend, as for :func:`ingest`.
    """
    owns_root = backend is None
    root = plan.make_backend() if backend is None else backend
    scope = root.subscope("cuboids")
    base_scope = root.subscope("base")
    try:
        base = CuboidAccumulator(
            "base",
            tuple(range(plan.ndim)),
            plan.shape,
            plan.base_dtype,
            base_scope,
        )
        rows = 0
        batches = 0
        for batch in batch_source():
            base.absorb(validate_batch(batch, plan), batch.values)
            rows += batch.rows
            batches += 1
        adopting = AdoptingBackend(scope)
        structures = []
        for chosen in plan.cuboids:
            dtype = (
                plan.base_dtype
                if len(chosen.key) == plan.ndim
                else plan.group_dtype
            )
            name = "cuboid-" + "-".join(str(j) for j in chosen.key)
            acc = CuboidAccumulator(
                name, chosen.key, plan.cuboid_shape(chosen.key), dtype, scope
            )
            for batch in batch_source():
                acc.absorb(validate_batch(batch, plan), batch.values)
            structures.append(
                chosen.index_spec().build(acc.cells, backend=adopting)
            )
        cuboid_set = MaterializedCuboidSet.from_accumulated(
            base.cells, plan.cuboids, structures, backend=adopting
        )
        base_scope.flush()
        root.flush()
        adopting.flush()
    except BaseException:
        # Same ownership rule as MultiCuboidAccumulator.release():
        # retire only the scopes this build created; a caller-provided
        # root may hold sibling builds' live arrays.
        scope.release()
        base_scope.release()
        if owns_root:
            root.release()
        raise
    return IngestResult(
        cuboid_set=cuboid_set,
        plan=plan,
        backend=root,
        base_backend=base_scope,
        rows=rows,
        batches=batches,
        spilled=isinstance(root, MemmapBackend),
    )


def in_memory_reference(
    batches: Iterable[RecordBatch], plan: IngestPlan
) -> MaterializedCuboidSet:
    """The non-streaming reference: densify, then ``__init__`` as usual.

    Materializes the full base cube in memory and lets
    :class:`MaterializedCuboidSet` compute every group-by with
    ``base.sum(axis=dropped)`` — the differential oracle the ingest
    tests compare streamed builds against, bit for bit (integer
    measures).
    """
    dense_plan = replace(plan, cuboids=(), budget_bytes=None)
    accumulator = MultiCuboidAccumulator(dense_plan, backend=None)
    for batch in batches:
        accumulator.absorb(batch)
    return MaterializedCuboidSet(accumulator.base, plan.cuboids)
