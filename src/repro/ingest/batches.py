"""Record batches and batch sources for streaming ingestion.

A *record* is one fact-table row: integer coordinates along every cube
dimension plus one measure value.  A :class:`RecordBatch` is a columnar
slab of such records — a ``(rows, d)`` coordinate array and a
``(rows,)`` value array — the unit the one-pass accumulators in
:mod:`repro.ingest.accumulate` consume.

Sources:

* :func:`iter_csv_batches` — always available (stdlib ``csv``), streams
  a headered CSV in bounded-size batches;
* :func:`iter_arrow_batches` / :func:`iter_parquet_batches` — available
  when ``pyarrow`` is importable (a *soft* dependency mirroring the
  numba kernel: absence degrades silently to "format unsupported", no
  import-time failure, ``REPRO_PYARROW_DISABLE`` forces the degraded
  path for CI parity legs);
* :func:`batches_from_records` / :func:`batches_from_cube` — in-memory
  sources for tests and benchmarks.

Every source raises :class:`IngestError` on malformed input (ragged
rows, non-numeric fields, wrong column counts) with the offending row
number; the accumulators guarantee that an error mid-stream leaves no
partial spill files behind.
"""

from __future__ import annotations

import csv
import importlib.util
import os
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Set (to any non-empty value) to force the CSV-only path even when
#: pyarrow is installed — the CI "without pyarrow" leg uses this.
ENV_DISABLE_PYARROW = "REPRO_PYARROW_DISABLE"

#: Default rows per batch: large enough that per-batch numpy dispatch
#: amortizes, small enough that a batch's parse buffers stay modest.
DEFAULT_BATCH_ROWS = 65536


class IngestError(ValueError):
    """Malformed ingest input (bad row, bad column set, bad bounds)."""


def pyarrow_available() -> bool:
    """Whether the Arrow/Parquet readers can activate."""
    if os.environ.get(ENV_DISABLE_PYARROW):
        return False
    return importlib.util.find_spec("pyarrow") is not None


@dataclass(frozen=True)
class RecordBatch:
    """One columnar slab of fact rows.

    Attributes:
        coords: ``(rows, d)`` integer coordinates, one column per cube
            dimension (in cube-dimension order).
        values: ``(rows,)`` measure values.
    """

    coords: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.coords.ndim != 2:
            raise IngestError(
                f"batch coords must be 2-D (rows, dims), got "
                f"shape {self.coords.shape}"
            )
        if self.values.ndim != 1:
            raise IngestError(
                f"batch values must be 1-D, got shape {self.values.shape}"
            )
        if len(self.coords) != len(self.values):
            raise IngestError(
                f"batch has {len(self.coords)} coordinate rows but "
                f"{len(self.values)} values"
            )

    @property
    def rows(self) -> int:
        """Number of records in the batch."""
        return len(self.values)


# ----------------------------------------------------------------------
# In-memory sources
# ----------------------------------------------------------------------


def batches_from_records(
    coords: np.ndarray,
    values: np.ndarray,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[RecordBatch]:
    """Slice in-memory record columns into bounded batches."""
    coords = np.asarray(coords)
    values = np.asarray(values)
    if batch_rows < 1:
        raise IngestError(f"batch_rows must be >= 1, got {batch_rows}")
    for start in range(0, len(values), batch_rows):
        yield RecordBatch(
            coords[start : start + batch_rows],
            values[start : start + batch_rows],
        )


def batches_from_cube(
    cube: np.ndarray, batch_rows: int = DEFAULT_BATCH_ROWS
) -> Iterator[RecordBatch]:
    """Stream a dense cube as one record per cell (tests, benchmarks).

    Ingesting the result reproduces ``cube`` exactly (integer dtypes),
    which is what the streamed≡in-memory differential tests pin.
    """
    cube = np.asarray(cube)
    flat = cube.reshape(-1)
    for start in range(0, flat.size, batch_rows):
        stop = min(start + batch_rows, flat.size)
        linear = np.arange(start, stop, dtype=np.int64)
        coords = np.stack(
            np.unravel_index(linear, cube.shape), axis=1
        ).astype(np.int64)
        yield RecordBatch(coords, flat[start:stop])


# ----------------------------------------------------------------------
# CSV source (always available)
# ----------------------------------------------------------------------


def _resolve_columns(
    header: Sequence[str],
    dims: Sequence[str] | None,
    measure: str | None,
) -> tuple[list[int], int]:
    """Map dimension/measure column names onto header positions.

    Defaults: the measure is the last column, the dimensions are every
    other column in header order.
    """
    positions = {name: i for i, name in enumerate(header)}
    if len(positions) != len(header):
        raise IngestError(f"duplicate column names in header {header!r}")
    if measure is None:
        measure_at = len(header) - 1
    elif measure in positions:
        measure_at = positions[measure]
    else:
        raise IngestError(
            f"measure column {measure!r} not in header {list(header)!r}"
        )
    if dims is None:
        dim_at = [i for i in range(len(header)) if i != measure_at]
    else:
        missing = [name for name in dims if name not in positions]
        if missing:
            raise IngestError(
                f"dimension column(s) {missing!r} not in header "
                f"{list(header)!r}"
            )
        dim_at = [positions[name] for name in dims]
    if not dim_at:
        raise IngestError("no dimension columns left for the cube")
    if measure_at in dim_at:
        raise IngestError(
            f"column {header[measure_at]!r} used as both dimension "
            "and measure"
        )
    return dim_at, measure_at


def iter_csv_batches(
    path: str | os.PathLike[str],
    *,
    dims: Sequence[str] | None = None,
    measure: str | None = None,
    dtype: object = np.int64,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[RecordBatch]:
    """Stream a headered CSV file as :class:`RecordBatch` slabs.

    Args:
        path: CSV file with a header row.
        dims: Dimension column names, in cube-dimension order; default
            every column except the measure.
        measure: Measure column name; default the last column.
        dtype: Measure dtype the value column is parsed as (parse
            errors — e.g. ``"3.5"`` into an integer cube — raise
            :class:`IngestError` rather than truncating).
        batch_rows: Rows per emitted batch.

    Raises:
        IngestError: On a missing header, unknown columns, ragged rows,
            or unparseable fields, naming the offending row.
    """
    if batch_rows < 1:
        raise IngestError(f"batch_rows must be >= 1, got {batch_rows}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise IngestError(f"{os.fspath(path)}: empty file") from None
        dim_at, measure_at = _resolve_columns(header, dims, measure)
        width = len(header)
        coord_rows: list[list[str]] = []
        value_rows: list[str] = []
        for number, row in enumerate(reader, start=2):
            if not row:
                continue  # blank trailing lines are harmless
            if len(row) != width:
                raise IngestError(
                    f"{os.fspath(path)}:{number}: expected {width} "
                    f"fields, got {len(row)}"
                )
            coord_rows.append([row[i] for i in dim_at])
            value_rows.append(row[measure_at])
            if len(value_rows) >= batch_rows:
                yield _parse_batch(
                    coord_rows, value_rows, dtype, path, number
                )
                coord_rows = []
                value_rows = []
        if value_rows:
            yield _parse_batch(coord_rows, value_rows, dtype, path, number)


def _parse_batch(
    coord_rows: list[list[str]],
    value_rows: list[str],
    dtype: object,
    path: str | os.PathLike[str],
    last_row: int,
) -> RecordBatch:
    """Convert accumulated string rows to arrays with clear errors."""
    try:
        coords = np.array(coord_rows, dtype=np.int64)
    except (ValueError, OverflowError) as exc:
        raise IngestError(
            f"{os.fspath(path)} (rows ending {last_row}): "
            f"non-integer coordinate: {exc}"
        ) from None
    try:
        values = np.array(value_rows, dtype=np.dtype(dtype))
    except (ValueError, OverflowError) as exc:
        raise IngestError(
            f"{os.fspath(path)} (rows ending {last_row}): "
            f"measure does not parse as {np.dtype(dtype)}: {exc}"
        ) from None
    return RecordBatch(coords, values)


# ----------------------------------------------------------------------
# Arrow / Parquet sources (soft pyarrow dependency)
# ----------------------------------------------------------------------


def _require_pyarrow(what: str) -> object:
    if not pyarrow_available():
        raise IngestError(
            f"{what} requires pyarrow, which is not available "
            "(install it, or convert the data to CSV)"
        )
    import pyarrow  # noqa: PLC0415  (soft dependency, import on use)

    return pyarrow


def _table_batches(
    table: object,
    dims: Sequence[str] | None,
    measure: str | None,
    dtype: object,
    batch_rows: int,
) -> Iterator[RecordBatch]:
    """Common Arrow-table → RecordBatch conversion."""
    header = list(table.column_names)  # type: ignore[attr-defined]
    dim_at, measure_at = _resolve_columns(header, dims, measure)
    for chunk in table.to_batches(max_chunksize=batch_rows):  # type: ignore[attr-defined]
        columns = [chunk.column(i).to_numpy(zero_copy_only=False) for i in dim_at]
        raw_values = chunk.column(measure_at).to_numpy(zero_copy_only=False)
        try:
            coords = np.stack(columns, axis=1).astype(np.int64, casting="same_kind")
            values = np.asarray(raw_values).astype(
                np.dtype(dtype), casting="same_kind"
            )
        except TypeError as exc:
            raise IngestError(
                f"arrow column types do not cast safely: {exc}"
            ) from None
        yield RecordBatch(coords, values)


def iter_arrow_batches(
    path: str | os.PathLike[str],
    *,
    dims: Sequence[str] | None = None,
    measure: str | None = None,
    dtype: object = np.int64,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[RecordBatch]:
    """Stream an Arrow IPC file (requires the soft pyarrow dependency)."""
    pa = _require_pyarrow("reading Arrow IPC")
    with pa.memory_map(os.fspath(path)) as source:  # type: ignore[attr-defined]
        table = pa.ipc.open_file(source).read_all()  # type: ignore[attr-defined]
    yield from _table_batches(table, dims, measure, dtype, batch_rows)


def iter_parquet_batches(
    path: str | os.PathLike[str],
    *,
    dims: Sequence[str] | None = None,
    measure: str | None = None,
    dtype: object = np.int64,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[RecordBatch]:
    """Stream a Parquet file (requires the soft pyarrow dependency)."""
    _require_pyarrow("reading Parquet")
    import pyarrow.parquet as pq  # noqa: PLC0415

    table = pq.read_table(os.fspath(path))
    yield from _table_batches(table, dims, measure, dtype, batch_rows)


#: File suffixes each reader claims (the CLI's format sniffing).
_SUFFIX_READERS = {
    ".csv": iter_csv_batches,
    ".arrow": iter_arrow_batches,
    ".feather": iter_arrow_batches,
    ".ipc": iter_arrow_batches,
    ".parquet": iter_parquet_batches,
    ".pq": iter_parquet_batches,
}


def open_batches(
    path: str | os.PathLike[str],
    *,
    fmt: str | None = None,
    dims: Sequence[str] | None = None,
    measure: str | None = None,
    dtype: object = np.int64,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> Iterator[RecordBatch]:
    """Open any supported data file as a batch stream.

    The format is taken from ``fmt`` (``csv`` / ``arrow`` / ``parquet``)
    or sniffed from the file suffix.  Arrow and Parquet need the soft
    pyarrow dependency; without it they raise a clear
    :class:`IngestError` instead of an import error.
    """
    if fmt is not None:
        readers = {
            "csv": iter_csv_batches,
            "arrow": iter_arrow_batches,
            "parquet": iter_parquet_batches,
        }
        if fmt not in readers:
            raise IngestError(
                f"unknown format {fmt!r}; expected one of {sorted(readers)}"
            )
        reader = readers[fmt]
    else:
        suffix = Path(path).suffix.lower()
        reader = _SUFFIX_READERS.get(suffix, iter_csv_batches)
    return reader(
        path,
        dims=dims,
        measure=measure,
        dtype=dtype,
        batch_rows=batch_rows,
    )


def infer_shape(batches: Iterator[RecordBatch]) -> tuple[int, ...]:
    """The minimal cube shape covering every coordinate in a stream.

    Consumes the iterator (sources are single-use; reopen the file for
    the actual ingest pass).
    """
    maxima: np.ndarray | None = None
    for batch in batches:
        if batch.rows == 0:
            continue
        if (batch.coords < 0).any():
            raise IngestError("negative coordinate in record stream")
        batch_max = batch.coords.max(axis=0)
        if maxima is None:
            maxima = batch_max
        elif len(batch_max) != len(maxima):
            raise IngestError(
                f"inconsistent dimensionality across batches: "
                f"{len(maxima)} then {len(batch_max)}"
            )
        else:
            maxima = np.maximum(maxima, batch_max)
    if maxima is None:
        raise IngestError("cannot infer a shape from an empty stream")
    return tuple(int(m) + 1 for m in maxima)
