"""Streaming ingestion: record batches → servable cuboid sets, one pass.

The paper's structures are built from a dense cube that is assumed to
exist; this package builds that cube — and every §9 cuboid chosen for
materialization — directly from a stream of fact-table records:

* :mod:`repro.ingest.batches` — batch sources (CSV always; Arrow and
  Parquet behind the soft ``pyarrow`` dependency);
* :mod:`repro.ingest.plan` — :class:`IngestPlan`: shape, cuboids,
  measure dtype, and the memory budget that decides when the build
  spills through a :class:`~repro.index.MemmapBackend`;
* :mod:`repro.ingest.accumulate` — the one-pass scatter accumulators;
* :mod:`repro.ingest.build` — :func:`ingest` (one pass, every cuboid)
  and :func:`ingest_per_scan` (the ``k + 1``-scan baseline).

``python -m repro.ingest data.csv --cuboids "0,1;1"`` runs a build from
the command line; ``docs/INGEST.md`` walks through the design.
"""

from repro.ingest.batches import (
    DEFAULT_BATCH_ROWS,
    ENV_DISABLE_PYARROW,
    IngestError,
    RecordBatch,
    batches_from_cube,
    batches_from_records,
    infer_shape,
    iter_arrow_batches,
    iter_csv_batches,
    iter_parquet_batches,
    open_batches,
    pyarrow_available,
)
from repro.ingest.build import (
    IngestResult,
    in_memory_reference,
    ingest,
    ingest_per_scan,
)
from repro.ingest.plan import IngestPlan, group_by_dtype, plan_cuboids

__all__ = [
    "DEFAULT_BATCH_ROWS",
    "ENV_DISABLE_PYARROW",
    "IngestError",
    "IngestPlan",
    "IngestResult",
    "RecordBatch",
    "batches_from_cube",
    "batches_from_records",
    "group_by_dtype",
    "in_memory_reference",
    "infer_shape",
    "ingest",
    "ingest_per_scan",
    "iter_arrow_batches",
    "iter_csv_batches",
    "iter_parquet_batches",
    "open_batches",
    "plan_cuboids",
    "pyarrow_available",
]
