"""``python -m repro.ingest`` — build cuboid sets from a data file.

Examples::

    # One-pass build of the base cube plus two cuboids, in memory:
    python -m repro.ingest sales.csv --cuboids "0,1;1,2"

    # Out-of-core: spill accumulators once they exceed 64 MiB, then
    # persist the built structures as zero-copy manifests:
    python -m repro.ingest sales.csv --cuboids "0;1" \\
        --budget-mb 64 --spill /data/spill --persist /data/spill

The cube shape is inferred from the data (one extra pre-scan) unless
``--shape`` pins it.  Arrow/Parquet inputs need the soft ``pyarrow``
dependency; CSV always works.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Sequence

from repro.index.backend import MemmapBackend
from repro.ingest.batches import (
    DEFAULT_BATCH_ROWS,
    IngestError,
    infer_shape,
    open_batches,
    pyarrow_available,
)
from repro.ingest.build import IngestResult, ingest
from repro.ingest.plan import IngestPlan, plan_cuboids


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"--shape must be comma-separated ints, got {text!r}")


def _parse_cuboids(text: str) -> list[tuple[int, ...]]:
    """``"0,1;1,2"`` → ``[(0, 1), (1, 2)]``."""
    keys = []
    for group in text.split(";"):
        group = group.strip()
        if not group:
            continue
        try:
            keys.append(tuple(int(part) for part in group.split(",")))
        except ValueError:
            raise SystemExit(
                f"--cuboids groups must be comma-separated ints, got {group!r}"
            )
    return keys


def _persist(result: IngestResult, directory: Path) -> dict[str, object]:
    """Write each built structure under ``directory``; returns a record.

    Spilled builds persist as zero-copy manifests over their own spill
    files (:func:`repro.io.save_index_manifest`); in-memory builds fall
    back to self-contained ``.npz`` archives.
    """
    from repro.io import save_index, save_index_manifest

    directory.mkdir(parents=True, exist_ok=True)
    record: dict[str, object] = {}
    for cuboid in result.cuboid_set.cuboids:
        name = "cuboid-" + "-".join(str(j) for j in cuboid.key)
        if result.spilled:
            target = directory / f"{name}.manifest.json"
            save_index_manifest(cuboid.structure, target)
        else:
            target = directory / f"{name}.npz"
            save_index(cuboid.structure, target)
        record[name] = str(target)
    if result.spilled:
        backend = result.base_backend
        assert isinstance(backend, MemmapBackend)
        record["base"] = [str(p) for p in backend.spill_files]
    summary = directory / "ingest.json"
    summary.write_text(
        json.dumps({"describe": result.describe(), "artifacts": record}, indent=2)
        + "\n"
    )
    record["summary"] = str(summary)
    return record


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ingest",
        description="One-pass streaming build of base cube + §9 cuboids.",
    )
    parser.add_argument("path", help="input data file (CSV/Arrow/Parquet)")
    parser.add_argument(
        "--shape",
        type=_parse_shape,
        default=None,
        help="cube shape, e.g. 64,64,8 (default: inferred by a pre-scan)",
    )
    parser.add_argument(
        "--cuboids",
        type=_parse_cuboids,
        default=[],
        help='semicolon-separated dimension groups, e.g. "0,1;1,2"',
    )
    parser.add_argument(
        "--block-size", type=int, default=8, help="blocked prefix block size"
    )
    parser.add_argument(
        "--dims",
        default=None,
        help="comma-separated dimension column names (default: all but measure)",
    )
    parser.add_argument(
        "--measure", default=None, help="measure column name (default: last)"
    )
    parser.add_argument(
        "--dtype", default="int64", help="measure dtype (default int64)"
    )
    parser.add_argument(
        "--batch-rows", type=int, default=DEFAULT_BATCH_ROWS
    )
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="accumulator budget in MiB; exceeding it spills to --spill",
    )
    parser.add_argument(
        "--spill", default=None, help="spill directory for out-of-core builds"
    )
    parser.add_argument(
        "--persist",
        default=None,
        help="directory to persist built structures into",
    )
    parser.add_argument(
        "--format",
        choices=("csv", "arrow", "parquet"),
        default=None,
        help="input format (default: sniff from suffix)",
    )
    args = parser.parse_args(argv)

    dims = args.dims.split(",") if args.dims else None
    source_kwargs = dict(
        fmt=args.format,
        dims=dims,
        measure=args.measure,
        dtype=args.dtype,
        batch_rows=args.batch_rows,
    )
    try:
        shape = args.shape
        if shape is None:
            shape = infer_shape(open_batches(args.path, **source_kwargs))
        plan = IngestPlan(
            shape=shape,
            cuboids=plan_cuboids(shape, args.cuboids, args.block_size),
            measure_dtype=args.dtype,
            budget_bytes=(
                None
                if args.budget_mb is None
                else int(args.budget_mb * (1 << 20))
            ),
            spill_directory=args.spill,
            batch_rows=args.batch_rows,
        )
        result = ingest(open_batches(args.path, **source_kwargs), plan)
    except IngestError as exc:
        print(f"ingest error: {exc}", file=sys.stderr)
        return 1
    summary = result.describe()
    summary["pyarrow"] = pyarrow_available()
    if args.persist:
        summary["persisted"] = _persist(result, Path(args.persist))
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
