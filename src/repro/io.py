"""Saving and loading precomputed structures.

Prefix-sum arrays and max trees are *precomputations*: in production they
are built once (or repaired by the §5/§7 batch updaters) and served for
days.  This module persists them as numpy ``.npz`` archives so a server
restart does not force an ``O(dN)`` rebuild.

Persistence is *generic* over the index registry: :func:`save_index`
works for any registered structure whose class implements
``state_dict()`` (every dense built-in does), and :func:`load_index`
looks the archive's registry name up and calls the class's
``from_state`` — no per-class save/load code.  Arrays round-trip with
their exact dtype (they are stored as-is in the ``.npz``); scalar
parameters travel in a JSON side-channel, so ``block_size``, operators,
and fanouts are preserved exactly.

The pre-registry per-class helpers (``save_prefix_sum`` /
``load_blocked`` / ...) remain as thin wrappers; they also still read
archives written in the old per-class format.

Two persistence shapes coexist:

* ``.npz`` archives (:func:`save_index` / :func:`load_index`) — one
  self-contained compressed file, read back *by copy*.  Right for
  structures that fit in memory.
* spill-file **manifests** (:func:`save_index_manifest` /
  :func:`open_index`) — for memmap-built structures whose arrays
  *already live on disk* as ``.npy`` spill files.  The manifest is a
  small JSON record of the registry name, scalar parameters, and the
  relative path of each defining array; :func:`open_index` re-maps
  those files in place and adopts them (no copy), so a cube built out
  of core by :mod:`repro.ingest` is served after restart without ever
  holding a second resident copy.  Zero-size (*degenerate*) arrays have
  no spill file by the backend contract — the manifest inlines their
  shape/dtype instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, BinaryIO

import numpy as np

from repro.index.backend import (
    AdoptingBackend,
    MemoryBackend,
    _backing_memmap,
)
from repro.index.registry import get_index_info, index_info_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.blocked import BlockedPrefixSumCube
    from repro.core.prefix_sum import PrefixSumCube
    from repro.core.range_max import RangeMaxTree
    from repro.index.backend import ArrayBackend

#: Archive format identifier and version, checked on load.
_FORMAT_KEY = "repro_format"
_INDEX_FORMAT_VERSION = 1
#: Pre-registry archive kinds (each matched its structure 1:1); their
#: payload keys coincide with today's ``state_dict`` keys, so they load
#: through the same ``from_state`` path.
_LEGACY_KINDS = {
    "prefix_sum": 1,
    "blocked_prefix_sum": 1,
    "range_max_tree": 1,
}


def save_index(
    index: object, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist any registered, persistable index to a ``.npz`` archive.

    The archive holds the structure's registry name, its defining arrays
    (exact dtypes), and a JSON record of its scalar parameters — exactly
    the ``state_dict()`` the structure reports.

    Args:
        index: A structure built from a registered class (possibly
            wrapped in :class:`~repro.index.InstrumentedIndex` — the
            wrapper is looked through).

    Raises:
        KeyError: The structure's class was never registered.
        ValueError: The structure registered with ``persistable=False``.
    """
    from repro.index.protocol import InstrumentedIndex

    if isinstance(index, InstrumentedIndex):
        index = index.index  # look through the counter wrapper
    info = index_info_for(index)
    if not info.persistable:
        raise ValueError(
            f"index {info.name!r} is registered as not persistable"
        )
    state = index.state_dict()
    meta: dict[str, object] = {}
    payload: dict[str, object] = {
        _FORMAT_KEY: f"index:{_INDEX_FORMAT_VERSION}",
        "index_name": info.name,
    }
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            payload[f"arr_{key}"] = value
        elif isinstance(value, np.generic):
            meta[key] = value.item()
        else:
            meta[key] = value
    payload["meta"] = json.dumps(meta)
    np.savez_compressed(path, **payload)


def load_index(
    path: str | os.PathLike | BinaryIO,
    backend: ArrayBackend | None = None,
) -> object:
    """Load any index archive without recomputation.

    Args:
        path: Archive written by :func:`save_index` (or by one of the
            pre-registry per-class savers).
        backend: Array backend the restored arrays are materialized
            into; pass a :class:`~repro.index.MemmapBackend` to serve a
            structure larger than RAM straight from its spill files.

    Returns:
        The restored structure (same registry name as saved).
    """
    with np.load(path, allow_pickle=False) as archive:
        if _FORMAT_KEY not in archive:
            raise ValueError("not a repro structure archive")
        kind, version = str(archive[_FORMAT_KEY]).split(":")
        if kind == "index":
            if int(version) > _INDEX_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported index archive version {version}"
                )
            name = str(archive["index_name"])
            state: dict[str, object] = dict(
                json.loads(str(archive["meta"]))
            )
            for key in archive.files:
                if key.startswith("arr_"):
                    state[key[len("arr_"):]] = archive[key]
        elif kind in _LEGACY_KINDS:
            if int(version) > _LEGACY_KINDS[kind]:
                raise ValueError(
                    f"unsupported {kind} archive version {version}"
                )
            name = kind
            state = {
                key: archive[key]
                for key in archive.files
                if key != _FORMAT_KEY
            }
        else:
            raise ValueError(f"unknown archive kind {kind!r}")
    info = get_index_info(name)
    return info.cls.from_state(state, backend=backend)


#: Manifest format identifier, checked on open.
_MANIFEST_FORMAT = "index-manifest"
_MANIFEST_VERSION = 1
#: Heap arrays at or under this size are inlined into the manifest
#: (metadata arrays and degenerate zero-size allocations); bigger ones
#: without a spill file are an error.
_INLINE_ARRAY_BYTES = 4096


def _unwrap(index: object) -> object:
    from repro.index.protocol import InstrumentedIndex

    if isinstance(index, InstrumentedIndex):
        return index.index
    return index


def save_index_manifest(
    index: object, path: str | os.PathLike[str]
) -> Path:
    """Persist a memmap-built structure *in place* via a JSON manifest.

    Every defining array must already be file-backed (built through a
    :class:`~repro.index.MemmapBackend`) — the spill files themselves
    are the persisted form; this function only flushes them and writes a
    manifest naming them.  Arrays are referenced by path *relative to
    the manifest*, so the manifest and the spill directory move together
    as one bundle.  Zero-size arrays (heap-backed by the backend's
    degenerate-allocation contract) are inlined as shape/dtype.

    Args:
        index: A registered, persistable structure whose arrays are
            memmap-backed.
        path: Where the manifest JSON is written.

    Returns:
        The manifest path.

    Raises:
        ValueError: An array with cells is not file-backed (use
            :func:`save_index` for in-memory structures), or a spill
            file lies on a different filesystem anchor than the
            manifest.
    """
    index = _unwrap(index)
    info = index_info_for(index)
    if not info.persistable:
        raise ValueError(
            f"index {info.name!r} is registered as not persistable"
        )
    manifest_path = Path(path).resolve()
    manifest_dir = manifest_path.parent
    meta: dict[str, object] = {}
    arrays: dict[str, dict[str, object]] = {}
    for key, value in index.state_dict().items():
        if isinstance(value, np.ndarray):
            backing = _backing_memmap(value)
            if backing is None:
                # Tiny heap arrays are legitimate even in a spilled
                # build: scalar-ish metadata (``prefix_dims``) and the
                # backend's zero-size degenerate allocations have no
                # spill file by contract — inline them in the manifest.
                if value.nbytes <= _INLINE_ARRAY_BYTES:
                    arrays[key] = {
                        "inline_shape": [int(n) for n in value.shape],
                        "dtype": value.dtype.str,
                        "inline_data": value.reshape(-1).tolist(),
                    }
                    continue
                raise ValueError(
                    f"array {key!r} of {info.name!r} is not file-backed; "
                    "a manifest persists spill files in place — use "
                    "save_index() for in-memory structures"
                )
            if value.shape != backing.shape or value.dtype != backing.dtype:
                raise ValueError(
                    f"array {key!r} is a partial view of its spill file; "
                    "manifests can only reference whole arrays"
                )
            backing.flush()
            file = Path(os.fspath(backing.filename)).resolve()
            arrays[key] = {
                "file": os.path.relpath(file, manifest_dir),
                "dtype": value.dtype.str,
                "shape": [int(n) for n in value.shape],
            }
        elif isinstance(value, np.generic):
            meta[key] = value.item()
        else:
            meta[key] = value
    manifest = {
        _FORMAT_KEY: f"{_MANIFEST_FORMAT}:{_MANIFEST_VERSION}",
        "index_name": info.name,
        "meta": meta,
        "arrays": arrays,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def open_index(
    path: str | os.PathLike[str], *, mode: str = "r+"
) -> object:
    """Reopen a manifest-persisted structure from its spill files.

    The defining arrays are memory-mapped straight from the ``.npy``
    files the build left behind and *adopted* (no copy) — reopening a
    larger-than-RAM structure costs a few pages, not ``O(N)`` resident
    bytes.

    Args:
        path: Manifest written by :func:`save_index_manifest`.
        mode: Mapping mode — ``"r+"`` (default) serves and allows
            in-place batch updates; ``"r"`` maps read-only.

    Returns:
        The restored structure, same registry name as saved.
    """
    manifest_path = Path(path).resolve()
    manifest = json.loads(manifest_path.read_text())
    kind, _, version = str(manifest.get(_FORMAT_KEY, "")).partition(":")
    if kind != _MANIFEST_FORMAT:
        raise ValueError(f"{manifest_path} is not an index manifest")
    if int(version) > _MANIFEST_VERSION:
        raise ValueError(f"unsupported manifest version {version}")
    state: dict[str, Any] = dict(manifest["meta"])
    for key, entry in manifest["arrays"].items():
        if "inline_shape" in entry:
            state[key] = np.asarray(
                entry.get("inline_data", []),
                dtype=np.dtype(entry["dtype"]),
            ).reshape(tuple(entry["inline_shape"]))
            continue
        file = (manifest_path.parent / entry["file"]).resolve()
        array = np.load(file, mmap_mode=mode)
        if list(array.shape) != list(entry["shape"]) or (
            array.dtype != np.dtype(entry["dtype"])
        ):
            raise ValueError(
                f"spill file {file} does not match its manifest entry "
                f"(expected {entry['shape']} {entry['dtype']}, found "
                f"{list(array.shape)} {array.dtype.str})"
            )
        state[key] = array
    info = get_index_info(str(manifest["index_name"]))
    return info.cls.from_state(
        state, backend=AdoptingBackend(MemoryBackend())
    )


def _load_expecting(
    expected: str,
    path: str | os.PathLike | BinaryIO,
    backend: ArrayBackend | None = None,
) -> object:
    """Generic load + registry-name check (the legacy wrappers' guard)."""
    index = load_index(path, backend=backend)
    name = index_info_for(index).name
    if name != expected:
        raise ValueError(
            f"archive holds a {name!r} structure, expected {expected!r}"
        )
    return index


def save_prefix_sum(
    structure: PrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`PrefixSumCube` (source included when kept)."""
    save_index(structure, path)


def load_prefix_sum(
    path: str | os.PathLike | BinaryIO,
) -> PrefixSumCube:
    """Load a :class:`PrefixSumCube` without recomputing the prefix."""
    return _load_expecting("prefix_sum", path)  # type: ignore[return-value]


def save_blocked(
    structure: BlockedPrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`BlockedPrefixSumCube` (raw cube included —
    the blocked method cannot run without it)."""
    save_index(structure, path)


def load_blocked(
    path: str | os.PathLike | BinaryIO,
) -> BlockedPrefixSumCube:
    """Load a :class:`BlockedPrefixSumCube` without recomputation."""
    return _load_expecting(  # type: ignore[return-value]
        "blocked_prefix_sum", path
    )


def save_max_tree(
    tree: RangeMaxTree, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`RangeMaxTree` (all levels plus the cube)."""
    save_index(tree, path)


def load_max_tree(path: str | os.PathLike | BinaryIO) -> RangeMaxTree:
    """Load a :class:`RangeMaxTree` without rebuilding its levels."""
    return _load_expecting(  # type: ignore[return-value]
        "range_max_tree", path
    )
