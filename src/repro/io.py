"""Saving and loading precomputed structures.

Prefix-sum arrays and max trees are *precomputations*: in production they
are built once (or repaired by the §5/§7 batch updaters) and served for
days.  This module persists them as numpy ``.npz`` archives so a server
restart does not force an ``O(dN)`` rebuild.

Persistence is *generic* over the index registry: :func:`save_index`
works for any registered structure whose class implements
``state_dict()`` (every dense built-in does), and :func:`load_index`
looks the archive's registry name up and calls the class's
``from_state`` — no per-class save/load code.  Arrays round-trip with
their exact dtype (they are stored as-is in the ``.npz``); scalar
parameters travel in a JSON side-channel, so ``block_size``, operators,
and fanouts are preserved exactly.

The pre-registry per-class helpers (``save_prefix_sum`` /
``load_blocked`` / ...) remain as thin wrappers; they also still read
archives written in the old per-class format.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, BinaryIO

import numpy as np

from repro.index.registry import get_index_info, index_info_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.blocked import BlockedPrefixSumCube
    from repro.core.prefix_sum import PrefixSumCube
    from repro.core.range_max import RangeMaxTree
    from repro.index.backend import ArrayBackend

#: Archive format identifier and version, checked on load.
_FORMAT_KEY = "repro_format"
_INDEX_FORMAT_VERSION = 1
#: Pre-registry archive kinds (each matched its structure 1:1); their
#: payload keys coincide with today's ``state_dict`` keys, so they load
#: through the same ``from_state`` path.
_LEGACY_KINDS = {
    "prefix_sum": 1,
    "blocked_prefix_sum": 1,
    "range_max_tree": 1,
}


def save_index(
    index: object, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist any registered, persistable index to a ``.npz`` archive.

    The archive holds the structure's registry name, its defining arrays
    (exact dtypes), and a JSON record of its scalar parameters — exactly
    the ``state_dict()`` the structure reports.

    Args:
        index: A structure built from a registered class (possibly
            wrapped in :class:`~repro.index.InstrumentedIndex` — the
            wrapper is looked through).

    Raises:
        KeyError: The structure's class was never registered.
        ValueError: The structure registered with ``persistable=False``.
    """
    from repro.index.protocol import InstrumentedIndex

    if isinstance(index, InstrumentedIndex):
        index = index.index  # look through the counter wrapper
    info = index_info_for(index)
    if not info.persistable:
        raise ValueError(
            f"index {info.name!r} is registered as not persistable"
        )
    state = index.state_dict()
    meta: dict[str, object] = {}
    payload: dict[str, object] = {
        _FORMAT_KEY: f"index:{_INDEX_FORMAT_VERSION}",
        "index_name": info.name,
    }
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            payload[f"arr_{key}"] = value
        elif isinstance(value, np.generic):
            meta[key] = value.item()
        else:
            meta[key] = value
    payload["meta"] = json.dumps(meta)
    np.savez_compressed(path, **payload)


def load_index(
    path: str | os.PathLike | BinaryIO,
    backend: ArrayBackend | None = None,
) -> object:
    """Load any index archive without recomputation.

    Args:
        path: Archive written by :func:`save_index` (or by one of the
            pre-registry per-class savers).
        backend: Array backend the restored arrays are materialized
            into; pass a :class:`~repro.index.MemmapBackend` to serve a
            structure larger than RAM straight from its spill files.

    Returns:
        The restored structure (same registry name as saved).
    """
    with np.load(path, allow_pickle=False) as archive:
        if _FORMAT_KEY not in archive:
            raise ValueError("not a repro structure archive")
        kind, version = str(archive[_FORMAT_KEY]).split(":")
        if kind == "index":
            if int(version) > _INDEX_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported index archive version {version}"
                )
            name = str(archive["index_name"])
            state: dict[str, object] = dict(
                json.loads(str(archive["meta"]))
            )
            for key in archive.files:
                if key.startswith("arr_"):
                    state[key[len("arr_"):]] = archive[key]
        elif kind in _LEGACY_KINDS:
            if int(version) > _LEGACY_KINDS[kind]:
                raise ValueError(
                    f"unsupported {kind} archive version {version}"
                )
            name = kind
            state = {
                key: archive[key]
                for key in archive.files
                if key != _FORMAT_KEY
            }
        else:
            raise ValueError(f"unknown archive kind {kind!r}")
    info = get_index_info(name)
    return info.cls.from_state(state, backend=backend)


def _load_expecting(
    expected: str,
    path: str | os.PathLike | BinaryIO,
    backend: ArrayBackend | None = None,
) -> object:
    """Generic load + registry-name check (the legacy wrappers' guard)."""
    index = load_index(path, backend=backend)
    name = index_info_for(index).name
    if name != expected:
        raise ValueError(
            f"archive holds a {name!r} structure, expected {expected!r}"
        )
    return index


def save_prefix_sum(
    structure: PrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`PrefixSumCube` (source included when kept)."""
    save_index(structure, path)


def load_prefix_sum(
    path: str | os.PathLike | BinaryIO,
) -> PrefixSumCube:
    """Load a :class:`PrefixSumCube` without recomputing the prefix."""
    return _load_expecting("prefix_sum", path)  # type: ignore[return-value]


def save_blocked(
    structure: BlockedPrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`BlockedPrefixSumCube` (raw cube included —
    the blocked method cannot run without it)."""
    save_index(structure, path)


def load_blocked(
    path: str | os.PathLike | BinaryIO,
) -> BlockedPrefixSumCube:
    """Load a :class:`BlockedPrefixSumCube` without recomputation."""
    return _load_expecting(  # type: ignore[return-value]
        "blocked_prefix_sum", path
    )


def save_max_tree(
    tree: RangeMaxTree, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`RangeMaxTree` (all levels plus the cube)."""
    save_index(tree, path)


def load_max_tree(path: str | os.PathLike | BinaryIO) -> RangeMaxTree:
    """Load a :class:`RangeMaxTree` without rebuilding its levels."""
    return _load_expecting(  # type: ignore[return-value]
        "range_max_tree", path
    )
