"""Saving and loading precomputed structures.

Prefix-sum arrays and max trees are *precomputations*: in production they
are built once (or repaired by the §5/§7 batch updaters) and served for
days.  This module persists them as numpy ``.npz`` archives so a server
restart does not force an ``O(dN)`` rebuild.

The archive format stores the defining arrays plus the scalar parameters
needed to reconstruct the object; loading re-wraps the arrays without
recomputation.
"""

from __future__ import annotations

import os
from typing import BinaryIO

import numpy as np

from repro.core.blocked import BlockedPrefixSumCube
from repro.core.operators import get_operator
from repro.core.prefix_sum import PrefixSumCube
from repro.core.range_max import RangeMaxTree

#: Archive format identifier and version, checked on load.
_FORMAT_KEY = "repro_format"
_FORMATS = {
    "prefix_sum": 1,
    "blocked_prefix_sum": 1,
    "range_max_tree": 1,
}


def _check_format(archive, expected: str) -> None:
    if _FORMAT_KEY not in archive:
        raise ValueError("not a repro structure archive")
    kind, version = str(archive[_FORMAT_KEY]).split(":")
    if kind != expected:
        raise ValueError(
            f"archive holds a {kind!r} structure, expected {expected!r}"
        )
    if int(version) > _FORMATS[expected]:
        raise ValueError(f"unsupported {kind} archive version {version}")


def save_prefix_sum(
    structure: PrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`PrefixSumCube` (source included when kept)."""
    payload = {
        _FORMAT_KEY: f"prefix_sum:{_FORMATS['prefix_sum']}",
        "operator": structure.operator.name,
        "prefix": structure.prefix,
    }
    if structure.source is not None:
        payload["source"] = structure.source
    np.savez_compressed(path, **payload)


def load_prefix_sum(path: str | os.PathLike | BinaryIO) -> PrefixSumCube:
    """Load a :class:`PrefixSumCube` without recomputing the prefix."""
    with np.load(path, allow_pickle=False) as archive:
        _check_format(archive, "prefix_sum")
        operator = get_operator(str(archive["operator"]))
        structure = PrefixSumCube.__new__(PrefixSumCube)
        structure.operator = operator
        structure.prefix = archive["prefix"]
        structure.shape = tuple(int(n) for n in structure.prefix.shape)
        structure.ndim = structure.prefix.ndim
        structure.source = (
            archive["source"] if "source" in archive else None
        )
    return structure


def save_blocked(
    structure: BlockedPrefixSumCube, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`BlockedPrefixSumCube` (raw cube included —
    the blocked method cannot run without it)."""
    np.savez_compressed(
        path,
        **{
            _FORMAT_KEY: (
                f"blocked_prefix_sum:{_FORMATS['blocked_prefix_sum']}"
            ),
            "operator": structure.operator.name,
            "block_size": np.int64(structure.block_size),
            "source": structure.source,
            "blocked_prefix": structure.blocked_prefix,
        },
    )


def load_blocked(
    path: str | os.PathLike | BinaryIO,
) -> BlockedPrefixSumCube:
    """Load a :class:`BlockedPrefixSumCube` without recomputation."""
    with np.load(path, allow_pickle=False) as archive:
        _check_format(archive, "blocked_prefix_sum")
        structure = BlockedPrefixSumCube.__new__(BlockedPrefixSumCube)
        structure.operator = get_operator(str(archive["operator"]))
        structure.block_size = int(archive["block_size"])
        structure.source = archive["source"]
        structure.blocked_prefix = archive["blocked_prefix"]
        structure.shape = tuple(int(n) for n in structure.source.shape)
        structure.ndim = structure.source.ndim
        structure.block_shape = structure.blocked_prefix.shape
    return structure


def save_max_tree(
    tree: RangeMaxTree, path: str | os.PathLike | BinaryIO
) -> None:
    """Persist a :class:`RangeMaxTree` (all levels plus the cube)."""
    payload: dict[str, object] = {
        _FORMAT_KEY: f"range_max_tree:{_FORMATS['range_max_tree']}",
        "fanout": np.int64(tree.fanout),
        "height": np.int64(tree.height),
        "source": tree.source,
    }
    for level in range(1, tree.height + 1):
        payload[f"values_{level}"] = tree.values[level]
        payload[f"positions_{level}"] = tree.positions[level]
    np.savez_compressed(path, **payload)


def load_max_tree(path: str | os.PathLike | BinaryIO) -> RangeMaxTree:
    """Load a :class:`RangeMaxTree` without rebuilding its levels."""
    with np.load(path, allow_pickle=False) as archive:
        _check_format(archive, "range_max_tree")
        tree = RangeMaxTree.__new__(RangeMaxTree)
        tree.fanout = int(archive["fanout"])
        tree.height = int(archive["height"])
        tree.source = archive["source"]
        tree.shape = tuple(int(n) for n in tree.source.shape)
        tree.ndim = tree.source.ndim
        tree.values = [None]
        tree.positions = [None]
        for level in range(1, tree.height + 1):
            tree.values.append(archive[f"values_{level}"])
            tree.positions.append(archive[f"positions_{level}"])
    return tree
