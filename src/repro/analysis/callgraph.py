"""Project-wide symbol table and call graph for cubelint rules.

The per-file rules of PR 4 see one ``ast.Module`` at a time; the
production-invariant rules of this layer (lock discipline, ownership
transfer, async offloading) need to answer questions like *"is this
nested function only ever called under the write lock?"* or *"does the
lambda passed here run under a read guard inside the helper?"* — which
require resolving calls across function, class, and module boundaries.

:class:`Project` is that resolution layer:

* every linted file is registered as a :class:`ModuleInfo` under its
  dotted module name (``src/repro/serving/service.py`` →
  ``repro.serving.service``), with its import table, module-level
  functions, and classes (methods included, ``async def`` and decorated
  definitions alike);
* :meth:`Project.resolve_call` maps one ``ast.Call`` back to the
  :class:`FunctionInfo` it invokes, handling plain names (enclosing
  nested scopes first, then module scope, then imports), ``self.method``
  / ``cls.method`` bound calls (walking declared base classes),
  ``module.attr`` chains through import aliases, and
  ``ClassName.method`` qualified calls;
* :meth:`Project.callers` inverts the edge set, so a rule can ask for
  every call site of a nested helper and check each site's context.

Resolution is deliberately *optimistic and partial*: anything dynamic
(``getattr``, callables stored in data structures, calls on values of
unknown class) resolves to ``None``, and rules must treat an unresolved
call as "no information", never as a violation.  Import targets are
matched by exact dotted name first and then by unique dotted-suffix, so
a fixture tree living under ``tests/analysis/fixtures/repro/serving``
still resolves ``from repro.serving.x import helper``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import PurePosixPath

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "module_name_for_path",
]


def module_name_for_path(path: str) -> str:
    """The dotted module name a file path denotes.

    ``src``-rooted layouts drop the leading ``src`` component (the
    repo's packaging convention); ``__init__.py`` names the package
    itself.  Paths are taken as POSIX (the engine normalizes).
    """
    parts = list(PurePosixPath(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    while parts and parts[0] in (".", "/", "src"):
        parts.pop(0)
    return ".".join(part for part in parts if part not in ("", "/"))


@dataclass
class FunctionInfo:
    """One function or method definition, project-qualified."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    cls: ClassInfo | None = None
    parent: FunctionInfo | None = None
    decorators: tuple[str, ...] = ()

    @property
    def is_async(self) -> bool:
        """Whether this is an ``async def`` coroutine function."""
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def is_method(self) -> bool:
        """Whether the definition sits directly inside a class body."""
        return self.cls is not None and self.parent is None

    def parameters(self) -> list[str]:
        """Positional parameter names, in order (``self`` included)."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]


@dataclass
class ClassInfo:
    """One class definition: its methods and declared bases."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module: imports, functions, classes."""

    name: str
    path: str
    tree: ast.Module
    #: Local binding → absolute dotted target (``np`` → ``numpy``,
    #: ``ingest`` → ``repro.ingest.build.ingest``).
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level functions by bare name.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Classes by bare name.
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def package(self) -> str:
        """The dotted package this module lives in."""
        return self.name.rpartition(".")[0]


class Project:
    """The symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        #: Every function in the project by fully qualified name.
        self.functions: dict[str, FunctionInfo] = {}
        #: Enclosing function of every AST node (populated per module).
        self._enclosing: dict[ast.AST, FunctionInfo] = {}
        self._callers: dict[str, list[tuple[FunctionInfo, ast.Call]]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, sources: Iterable[tuple[str, ast.Module]]) -> Project:
        """Index ``(path, tree)`` pairs into a resolvable project."""
        project = cls()
        for path, tree in sources:
            project.add_module(path, tree)
        return project

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        """Register one parsed file (idempotent per path)."""
        existing = self.by_path.get(path)
        if existing is not None:
            return existing
        name = module_name_for_path(path)
        module = ModuleInfo(name=name, path=path, tree=tree)
        self._collect_imports(module)
        self._collect_definitions(module)
        self.modules[name] = module
        self.by_path[path] = module
        self._callers = None
        return module

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: climb from the module's package.
                    package_parts = module.package().split(".")
                    if node.level - 1:
                        package_parts = package_parts[: -(node.level - 1)]
                    prefix = ".".join(p for p in package_parts if p)
                    base = f"{prefix}.{base}" if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_definitions(self, module: ModuleInfo) -> None:
        def visit_function(
            node: ast.FunctionDef | ast.AsyncFunctionDef,
            prefix: str,
            cls: ClassInfo | None,
            parent: FunctionInfo | None,
        ) -> FunctionInfo:
            qualname = f"{prefix}.{node.name}"
            info = FunctionInfo(
                qualname=qualname,
                module=module.name,
                name=node.name,
                node=node,
                path=module.path,
                cls=cls,
                parent=parent,
                decorators=tuple(
                    name
                    for name in (
                        _dotted(d.func) if isinstance(d, ast.Call) else _dotted(d)
                        for d in node.decorator_list
                    )
                    if name is not None
                ),
            )
            self.functions[qualname] = info
            # Visit nested definitions FIRST so their subtrees are
            # claimed by the innermost function — enclosing_function()
            # must answer "the nearest def", not the outermost one.
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_function(stmt, qualname, None, info)
                elif isinstance(stmt, ast.ClassDef):
                    visit_class(stmt, qualname)
            for child in ast.walk(node):
                if child is not node and child not in self._enclosing:
                    self._enclosing[child] = info
            return info

        def visit_class(node: ast.ClassDef, prefix: str) -> None:
            qualname = f"{prefix}.{node.name}"
            info = ClassInfo(
                qualname=qualname,
                module=module.name,
                name=node.name,
                node=node,
                path=module.path,
                bases=tuple(
                    name
                    for name in (_dotted(b) for b in node.bases)
                    if name is not None
                ),
            )
            module.classes.setdefault(node.name, info)
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods[stmt.name] = visit_function(
                        stmt, qualname, info, None
                    )
                elif isinstance(stmt, ast.ClassDef):
                    visit_class(stmt, qualname)

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.functions[stmt.name] = visit_function(
                    stmt, module.name, None, None
                )
            elif isinstance(stmt, ast.ClassDef):
                visit_class(stmt, module.name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def module_for(self, path: str) -> ModuleInfo | None:
        """The module registered for ``path`` (POSIX), if any."""
        return self.by_path.get(path)

    def enclosing_function(self, node: ast.AST) -> FunctionInfo | None:
        """The innermost function definition containing ``node``."""
        return self._enclosing.get(node)

    def find_module(self, dotted: str) -> ModuleInfo | None:
        """A module by exact dotted name, else by unique dotted suffix."""
        exact = self.modules.get(dotted)
        if exact is not None:
            return exact
        matches = [
            m
            for name, m in self.modules.items()
            if name == dotted or name.endswith("." + dotted)
        ]
        return matches[0] if len(matches) == 1 else None

    def resolve_name(self, dotted: str) -> FunctionInfo | ClassInfo | None:
        """Resolve an absolute dotted name to a function or class.

        Tries the longest module prefix first, then interprets the
        remainder as ``func`` or ``Class[.method]`` within it.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = self.find_module(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            if not rest:
                return None
            if rest[0] in module.functions and len(rest) == 1:
                return module.functions[rest[0]]
            cls = module.classes.get(rest[0])
            if cls is not None:
                if len(rest) == 1:
                    return cls
                if len(rest) == 2:
                    return self._method_on(cls, rest[1])
            return None
        return None

    def _method_on(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """A method by name, walking declared bases (linearized, cycle-safe)."""
        seen: set[str] = set()
        queue: list[ClassInfo] = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module)
            for base in current.bases:
                resolved = self._resolve_class_name(base, module)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_class_name(
        self, dotted: str, module: ModuleInfo | None
    ) -> ClassInfo | None:
        if module is not None:
            head, _, rest = dotted.partition(".")
            local = module.classes.get(dotted)
            if local is not None:
                return local
            target = module.imports.get(head)
            if target is not None:
                dotted = f"{target}.{rest}" if rest else target
        resolved = self.resolve_name(dotted)
        return resolved if isinstance(resolved, ClassInfo) else None

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, module: ModuleInfo
    ) -> FunctionInfo | None:
        """The function a call invokes, or ``None`` when unknowable.

        A call that resolves to a *class* returns its ``__init__`` when
        one is defined (constructor calls are calls too), else ``None``.
        """
        resolved = self._resolve_target(call.func, module)
        if isinstance(resolved, ClassInfo):
            return self._method_on(resolved, "__init__")
        return resolved

    def _resolve_target(
        self, func: ast.expr, module: ModuleInfo
    ) -> FunctionInfo | ClassInfo | None:
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(func, module)
        if not isinstance(func, ast.Attribute):
            return None
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and rest and "." not in rest:
            enclosing = self.enclosing_function(func)
            while enclosing is not None and enclosing.cls is None:
                enclosing = enclosing.parent
            if enclosing is not None and enclosing.cls is not None:
                return self._method_on(enclosing.cls, rest)
            return None
        # ClassName.method within the same module.
        cls = module.classes.get(head)
        if cls is not None and rest and "." not in rest:
            return self._method_on(cls, rest)
        # Imported module / imported name attribute chains.
        target = module.imports.get(head)
        if target is not None:
            return self.resolve_name(f"{target}.{rest}" if rest else target)
        return None

    def _resolve_bare_name(
        self, name: ast.Name, module: ModuleInfo
    ) -> FunctionInfo | ClassInfo | None:
        # Nested function in an enclosing scope wins over module scope.
        enclosing = self.enclosing_function(name)
        while enclosing is not None:
            candidate = self.functions.get(f"{enclosing.qualname}.{name.id}")
            if candidate is not None:
                return candidate
            enclosing = enclosing.parent
        if name.id in module.functions:
            return module.functions[name.id]
        if name.id in module.classes:
            return module.classes[name.id]
        target = module.imports.get(name.id)
        if target is not None:
            return self.resolve_name(target)
        return None

    # ------------------------------------------------------------------
    # Call graph edges
    # ------------------------------------------------------------------

    def iter_calls(self, module: ModuleInfo) -> Iterator[tuple[ast.Call, FunctionInfo | None]]:
        """Every call in ``module`` with its enclosing function (if any)."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield node, self.enclosing_function(node)

    def callers(
        self, target: FunctionInfo
    ) -> Sequence[tuple[FunctionInfo, ast.Call]]:
        """Resolved call sites of ``target`` across the project.

        Each entry is ``(calling function, call node)``; call sites at
        module level (outside any function) are omitted — rules that
        need them can walk the module themselves.
        """
        if self._callers is None:
            edges: dict[str, list[tuple[FunctionInfo, ast.Call]]] = {}
            for module in self.modules.values():
                for call, enclosing in self.iter_calls(module):
                    if enclosing is None:
                        continue
                    resolved = self.resolve_call(call, module)
                    if resolved is None:
                        continue
                    edges.setdefault(resolved.qualname, []).append(
                        (enclosing, call)
                    )
            self._callers = edges
        return tuple(self._callers.get(target.qualname, ()))


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
