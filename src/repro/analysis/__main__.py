"""``python -m repro.analysis`` — the cubelint CLI.

Exit codes: ``0`` when no new violations (baselined and suppressed
findings do not fail the run), ``1`` when new violations exist, ``2``
on usage errors.  ``--format json`` emits a machine-readable report;
``--write-baseline`` regenerates the grandfather file instead of
failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition_baseline,
    write_baseline,
)
from repro.analysis.engine import Rule, Violation, run_paths
from repro.analysis.rules import default_rules, rules_by_id


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="cubelint: the repo-specific static-analysis pass "
        "(see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help="output format (default: text); 'github' emits workflow-"
        "command annotations, 'sarif' a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) when the lint run takes longer than this "
        "wall-clock bound — CI's guard against interprocedural-pass "
        "latency creep",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE-ID",
        help="run only these rules (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of grandfathered violations "
        f"(default: ./{DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the shipped rules and exit",
    )
    return parser


def _selected_rules(select: Sequence[str] | None) -> list:
    rules = default_rules()
    if not select:
        return rules
    wanted: set[str] = set()
    for entry in select:
        wanted.update(part.strip() for part in entry.split(",") if part.strip())
    known = rules_by_id()
    unknown = wanted - set(known)
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    return [rule for rule in rules if rule.rule_id in wanted]


def _resolve_baseline(argument: str | None) -> Path | None:
    if argument is not None:
        return Path(argument)
    default = Path(DEFAULT_BASELINE_NAME)
    return default if default.exists() else None


def _escape_workflow_data(value: str) -> str:
    """Escape a workflow-command *message* (data) segment."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _escape_workflow_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=...)."""
    return (
        _escape_workflow_data(value).replace(":", "%3A").replace(",", "%2C")
    )


def _print_github(violations: Sequence[Violation]) -> None:
    """GitHub Actions workflow commands: inline PR annotations for free."""
    for v in violations:
        print(
            f"::error file={_escape_workflow_property(v.path)},"
            f"line={v.line},col={v.col + 1},"
            f"title={_escape_workflow_property(f'cubelint {v.rule_id}')}"
            f"::{_escape_workflow_data(v.message)}"
        )


def _sarif_payload(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> dict:
    """A minimal-but-valid SARIF 2.1.0 log (one run, one result/violation)."""
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "cubelint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "shortDescription": {
                                    "text": rule.description
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": v.rule_id,
                        "level": "error",
                        "message": {"text": v.message},
                        "partialFingerprints": (
                            {"cubelint/v2": v.fingerprint}
                            if v.fingerprint
                            else {}
                        ),
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": v.path},
                                    "region": {
                                        "startLine": v.line,
                                        "startColumn": v.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for v in violations
                ],
            }
        ],
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all files"
            print(f"{rule.rule_id:18s} [{scope}]\n    {rule.description}")
        return 0

    try:
        rules = _selected_rules(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    started = time.monotonic()
    report = run_paths(args.paths, rules)
    elapsed = time.monotonic() - started
    baseline_path = _resolve_baseline(args.baseline)

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        count = write_baseline(target, report.violations)
        print(f"cubelint: wrote {count} baseline entrie(s) to {target}")
        return 0

    baseline = load_baseline(baseline_path) if baseline_path else set()
    new, grandfathered = partition_baseline(report.violations, baseline)

    if args.format == "json":
        payload = {
            "violations": [v.as_json() for v in new],
            "baselined": [v.as_json() for v in grandfathered],
            "counts": {
                "files": report.files,
                "violations": len(new),
                "baselined": len(grandfathered),
                "suppressed": report.suppressed,
            },
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        print(json.dumps(_sarif_payload(new, rules), indent=2))
    elif args.format == "github":
        _print_github(new)
        print(
            f"cubelint: {len(new)} violation(s) in {report.files} file(s)"
        )
    else:
        for violation in new:
            print(violation.format())
        summary = (
            f"cubelint: {len(new)} violation(s) in {report.files} file(s)"
        )
        extras = []
        if report.suppressed:
            extras.append(f"{report.suppressed} suppressed")
        if grandfathered:
            extras.append(f"{len(grandfathered)} baselined")
        if extras:
            summary += f" ({', '.join(extras)})"
        print(summary)

    if args.time_budget is not None and elapsed > args.time_budget:
        print(
            f"cubelint: analysis took {elapsed:.2f}s, over the "
            f"--time-budget of {args.time_budget:.2f}s",
            file=sys.stderr,
        )
        return 1

    return 1 if new else 0


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/`head` closed the pipe: exit quietly, the
        # way every well-behaved CLI does.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
