"""The cubelint rule engine: contexts, suppressions, file runner.

A :class:`Rule` inspects one parsed module and yields
:class:`Violation` records.  The engine owns everything rules should not
have to care about: discovering files, parsing once per file, scoping
rules to path fragments, and honouring ``# cubelint: allow[rule-id]``
suppression comments (same line, or an immediately preceding
comment-only line).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.analysis.callgraph import Project

#: Matches the suppression directive inside a comment token.
_ALLOW_RE = re.compile(r"cubelint:\s*allow\[([^\]]*)\]")

#: Rule id reserved for files the engine cannot parse.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule, a location, and a human-readable message."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Context hash of the flagged statement's source (baseline identity
    #: that survives the statement moving to a different line).  Empty
    #: when no statement source was available.
    fingerprint: str = field(default="", compare=False)

    def format(self) -> str:
        """The canonical one-line human rendering."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"

    def as_json(self) -> dict[str, object]:
        """The JSON-output rendering (stable key order via dict literal)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def statement_fingerprint(
    lines: Sequence[str], node: ast.AST
) -> str:
    """A content hash of the statement spanning ``node``.

    Hashes the flagged statement's source lines with per-line leading and
    trailing whitespace stripped, so re-indenting or moving the statement
    keeps its identity while editing it does not.  Used for baseline
    keys (``path:rule-id:h<hash>``): line-keyed baselines silently
    un-grandfather (or mask) findings whenever unrelated code above them
    shifts.
    """
    start = int(getattr(node, "lineno", 0))
    end = int(getattr(node, "end_lineno", start) or start)
    if start < 1 or start > len(lines):
        return ""
    snippet = "\n".join(
        line.strip() for line in lines[start - 1 : min(end, len(lines))]
    )
    digest = hashlib.sha256(snippet.encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass
class LintContext:
    """Everything a rule may inspect about one file."""

    path: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)
    #: Project-wide symbol table / call graph when the engine linted a
    #: whole tree; ``None`` for standalone single-file lints.  Rules that
    #: need interprocedural answers call :meth:`project_view`.
    project: Project | None = None

    @classmethod
    def from_source(
        cls, path: str, source: str, project: Project | None = None
    ) -> LintContext:
        """Parse ``source`` once and package it for the rules.

        Raises:
            SyntaxError: If the file is not valid Python.
        """
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
            project=project,
        )

    def project_view(self) -> Project:
        """The project this file belongs to, or a single-file fallback.

        Single-file lints (tests, editor integrations) still get working
        intraprocedural-plus-local-methods resolution: a project built
        from just this module.
        """
        if self.project is None:
            self.project = Project.build([(self.path, self.tree)])
        return self.project


class Rule:
    """Base class for cubelint rules.

    Subclasses set :attr:`rule_id`, :attr:`description`, optionally a
    path :attr:`scope`, and implement :meth:`check`.
    """

    #: Stable kebab-case identifier (used in suppressions and baselines).
    rule_id: ClassVar[str] = ""
    #: One-line summary shown by ``--list-rules``.
    description: ClassVar[str] = ""
    #: POSIX path fragments the rule is restricted to; empty = every file.
    scope: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, path: str) -> bool:
        """Whether ``path`` (POSIX-style) falls inside the rule's scope."""
        if not self.scope:
            return True
        return any(fragment in path for fragment in self.scope)

    def check(self, context: LintContext) -> Iterator[Violation]:
        """Yield violations found in ``context``."""
        raise NotImplementedError

    def violation(
        self, context: LintContext, node: ast.AST, message: str
    ) -> Violation:
        """Convenience constructor anchored at ``node``."""
        return Violation(
            path=context.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)) + 1,
            rule_id=self.rule_id,
            message=message,
            fingerprint=statement_fingerprint(context.lines, node),
        )


@dataclass
class LintReport:
    """Aggregate result of linting a set of files."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    def extend(self, other: LintReport) -> None:
        """Merge another report (one file's results) into this one."""
        self.violations.extend(other.violations)
        self.suppressed += other.suppressed
        self.files += other.files


def suppressed_rules_by_line(source: str) -> dict[int, set[str]]:
    """Map line number → rule ids allowed there.

    Directives are comments of the form ``# cubelint: allow[rule-id]``
    (several ids may be comma-separated).  Comments are located with
    :mod:`tokenize` so directive text inside string literals is ignored.
    Files that fail to tokenize return an empty map — the parse error is
    reported separately.
    """
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            ids = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            if ids:
                allowed.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:
        return {}
    return allowed


def _is_suppressed(
    violation: Violation,
    allowed: dict[int, set[str]],
    lines: Sequence[str],
) -> bool:
    """Same-line directives always apply; a directive on the previous
    line applies when that line holds nothing but the comment."""
    same_line = allowed.get(violation.line, set())
    if violation.rule_id in same_line:
        return True
    previous = allowed.get(violation.line - 1, set())
    if violation.rule_id in previous and 0 < violation.line - 1 <= len(lines):
        return lines[violation.line - 2].lstrip().startswith("#")
    return False


def lint_source(
    path: str,
    source: str,
    rules: Sequence[Rule],
    project: Project | None = None,
) -> LintReport:
    """Lint one in-memory module with every applicable rule.

    When ``project`` already indexed this path, its parsed tree is
    reused — rules compare AST nodes by identity against the project's
    symbol table, so the context must expose the *same* tree object.
    """
    report = LintReport(files=1)
    indexed = project.module_for(path) if project is not None else None
    try:
        if indexed is not None:
            context = LintContext(
                path=path,
                source=source,
                tree=indexed.tree,
                lines=tuple(source.splitlines()),
                project=project,
            )
        else:
            context = LintContext.from_source(path, source, project=project)
    except SyntaxError as exc:
        report.violations.append(
            Violation(
                path=path,
                line=int(exc.lineno or 1),
                col=int(exc.offset or 0) + 1,
                rule_id=SYNTAX_ERROR_RULE,
                message=f"cannot parse file: {exc.msg}",
            )
        )
        return report
    allowed = suppressed_rules_by_line(source)
    findings: list[Violation] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        findings.extend(rule.check(context))
    for violation in sorted(findings):
        if _is_suppressed(violation, allowed, context.lines):
            report.suppressed += 1
        else:
            report.violations.append(violation)
    return report


def lint_file(
    path: Path | str,
    rules: Sequence[Rule],
    project: Project | None = None,
) -> LintReport:
    """Lint one file from disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(file_path.as_posix(), source, rules, project=project)


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_paths(
    paths: Iterable[Path | str], rules: Sequence[Rule]
) -> LintReport:
    """Lint every Python file under ``paths`` and merge the reports.

    Parses every file once up front and builds one project-wide
    :class:`Project` (symbol table + call graph) shared by all files, so
    interprocedural rules resolve calls across module boundaries instead
    of seeing each file in isolation.  Unparseable files stay out of the
    project; their syntax errors are reported per-file as before.
    """
    files = list(iter_python_files(paths))
    sources: dict[Path, str] = {}
    parsed: list[tuple[str, ast.Module]] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        sources[file_path] = source
        posix = file_path.as_posix()
        try:
            parsed.append((posix, ast.parse(source, filename=posix)))
        except SyntaxError:
            continue  # lint_source re-parses and reports the error
    project = Project.build(parsed)
    total = LintReport()
    for file_path in files:
        total.extend(
            lint_source(
                file_path.as_posix(), sources[file_path], rules, project
            )
        )
    total.violations.sort()
    return total
