"""cubelint — the repo-specific static-analysis pass.

PR 3's differential fuzzer kept rediscovering the same *classes* of bug:
narrow-dtype accumulation wrap, entry points that skip
:func:`~repro._util.check_query_box`, memmap mutations that never reach
``backend.flush()``.  Each one breaks an invariant that follows directly
from the paper's Theorem-1 inclusion–exclusion algebra — a wrong dtype or
an unvalidated box makes the ``⊕``/``⊖`` cancellation silently wrong.
cubelint turns those invariants into AST-level lint rules so they are
enforced at review time instead of being re-found by fuzzing every PR.

The package is a small rule engine (:mod:`repro.analysis.engine`) plus
five repo-specific rules (:mod:`repro.analysis.rules`):

========================  ====================================================
rule id                   invariant
========================  ====================================================
``dtype-safety``          numpy allocations/reductions in the hot layers
                          carry an explicit ``dtype=`` (routed through
                          ``InvertibleOperator.accumulation_dtype``)
``box-validation``        public query entry points on registered indexes
                          validate via ``check_query_box`` first
``registry-contract``     ``@register_index`` classes implement the protocol
                          surface their ``FuzzProfile`` declares
``memmap-flush``          update paths that mutate backend-held arrays call
                          ``backend.flush()`` on every return path
``determinism``           no unseeded global randomness in ``repro/verify``
                          and ``benchmarks/``
========================  ====================================================

Run it as ``python -m repro.analysis [paths ...]``; see
``docs/ANALYSIS.md`` for the full rule reference, the
``# cubelint: allow[rule-id]`` suppression syntax, and the baseline
workflow.
"""

from repro.analysis.baseline import (
    baseline_key,
    load_baseline,
    partition_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    LintContext,
    LintReport,
    Rule,
    Violation,
    iter_python_files,
    lint_file,
    run_paths,
)
from repro.analysis.rules import default_rules, rules_by_id

__all__ = [
    "LintContext",
    "LintReport",
    "Rule",
    "Violation",
    "baseline_key",
    "default_rules",
    "iter_python_files",
    "lint_file",
    "load_baseline",
    "partition_baseline",
    "rules_by_id",
    "run_paths",
    "write_baseline",
]
