"""Baseline handling: grandfather known violations, fail on new ones.

The baseline is a checked-in JSON file listing violation keys
(``path:rule-id:h<context-hash>``).  A lint run compares its findings
against the baseline: grandfathered entries are reported separately and
do not fail the run, anything new does.  ``python -m repro.analysis
--write-baseline`` regenerates the file; the project keeps it
(near-)empty — real violations get fixed, deliberate exceptions use
inline ``# cubelint: allow[...]`` suppressions instead.

Key format
----------

Keys used to be ``path:rule-id:line``, which meant any unrelated edit
*above* a grandfathered finding silently un-baselined it — or worse,
masked a brand-new violation that happened to land on the shifted line.
Keys are now ``path:rule-id:h<hash>`` where the hash is a content hash
of the flagged statement's source (:func:`~repro.analysis.engine.
statement_fingerprint`): the identity follows the statement, not its
line number.  Old-format entries are still *matched* (by line) so an
existing baseline keeps working, and ``--write-baseline`` migrates them:
regeneration always emits the new format.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import Violation

#: Default baseline location (repo root, next to ``pyproject.toml``).
DEFAULT_BASELINE_NAME = "cubelint.baseline.json"

_FORMAT_VERSION = 2


def baseline_key(violation: Violation) -> str:
    """The stable identity of a violation for baseline matching.

    The trailing component is a content hash of the flagged statement,
    so the entry survives the statement moving to a different line but
    not the statement being edited — an edited grandfathered violation
    resurfaces for review instead of hiding forever.  Violations with no
    fingerprint (synthetic, or anchored outside the file) fall back to
    the line-keyed form.
    """
    if violation.fingerprint:
        return f"{violation.path}:{violation.rule_id}:h{violation.fingerprint}"
    return legacy_baseline_key(violation)


def legacy_baseline_key(violation: Violation) -> str:
    """The pre-v2 ``path:rule-id:line`` key, kept for matching old files."""
    return f"{violation.path}:{violation.rule_id}:{violation.line}"


def load_baseline(path: Path | str) -> set[str]:
    """Read a baseline file; a missing file is an empty baseline.

    Both key formats load as-is: matching (:func:`partition_baseline`)
    accepts either, and the next ``--write-baseline`` migrates the file
    wholesale to the new format.
    """
    file_path = Path(path)
    if not file_path.exists():
        return set()
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {str(entry) for entry in entries}


def write_baseline(path: Path | str, violations: list[Violation]) -> int:
    """Write ``violations`` as the new baseline; returns the entry count.

    Always emits context-hash keys — rewriting is how old line-keyed
    entries migrate: the violations they grandfathered are re-found by
    the run and re-recorded under their statement fingerprints.
    """
    entries = sorted({baseline_key(v) for v in violations})
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition_baseline(
    violations: list[Violation], baseline: set[str]
) -> tuple[list[Violation], list[Violation]]:
    """Split findings into ``(new, grandfathered)`` against a baseline.

    A finding is grandfathered when either its context-hash key or its
    legacy line key appears in the baseline, so baselines written before
    the key-format change keep suppressing the findings they recorded
    until the next ``--write-baseline`` migrates them.
    """
    new: list[Violation] = []
    grandfathered: list[Violation] = []
    for violation in violations:
        if (
            baseline_key(violation) in baseline
            or legacy_baseline_key(violation) in baseline
        ):
            grandfathered.append(violation)
        else:
            new.append(violation)
    return new, grandfathered
