"""Baseline handling: grandfather known violations, fail on new ones.

The baseline is a checked-in JSON file listing violation keys
(``path:rule-id:line``).  A lint run compares its findings against the
baseline: grandfathered entries are reported separately and do not fail
the run, anything new does.  ``python -m repro.analysis
--write-baseline`` regenerates the file; the project keeps it
(near-)empty — real violations get fixed, deliberate exceptions use
inline ``# cubelint: allow[...]`` suppressions instead.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import Violation

#: Default baseline location (repo root, next to ``pyproject.toml``).
DEFAULT_BASELINE_NAME = "cubelint.baseline.json"

_FORMAT_VERSION = 1


def baseline_key(violation: Violation) -> str:
    """The stable identity of a violation for baseline matching.

    Line numbers are part of the key on purpose: when surrounding code
    moves a grandfathered violation, the move surfaces it for review
    instead of hiding it forever.
    """
    return f"{violation.path}:{violation.rule_id}:{violation.line}"


def load_baseline(path: Path | str) -> set[str]:
    """Read a baseline file; a missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return set()
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    entries = payload.get("entries", [])
    return {str(entry) for entry in entries}


def write_baseline(path: Path | str, violations: list[Violation]) -> int:
    """Write ``violations`` as the new baseline; returns the entry count."""
    entries = sorted({baseline_key(v) for v in violations})
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def partition_baseline(
    violations: list[Violation], baseline: set[str]
) -> tuple[list[Violation], list[Violation]]:
    """Split findings into ``(new, grandfathered)`` against a baseline."""
    new: list[Violation] = []
    grandfathered: list[Violation] = []
    for violation in violations:
        if baseline_key(violation) in baseline:
            grandfathered.append(violation)
        else:
            new.append(violation)
    return new, grandfathered
