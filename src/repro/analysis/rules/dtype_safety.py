"""Rule ``dtype-safety`` — explicit dtypes on hot-path numpy calls.

The shipped bug class (PR 3): prefix accumulation in the source dtype
silently wraps ``int8`` cubes and loses ``float32`` precision, breaking
the Theorem-1 ``⊕``/``⊖`` cancellation.  The normative policy lives in
:meth:`repro.core.operators.InvertibleOperator.accumulation_dtype`; this
rule makes sure the numpy calls that allocate or reduce aggregate
storage in ``repro/{core,sparse,query}`` state their dtype explicitly
(``dtype=`` or ``out=``) instead of inheriting whatever numpy infers.

Deliberately dtype-polymorphic call sites (the raw ``accumulate``
lambdas that :meth:`accumulation_dtype` itself probes) carry a
``# cubelint: allow[dtype-safety]`` suppression.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import (
    dotted_name,
    keyword_names,
    numpy_aliases,
    terminal_name,
)

#: numpy module-level callables that take ``dtype`` (positional index of
#: the dtype parameter, for calls passing it positionally).
_NUMPY_FUNCTIONS = {
    "zeros": 1,
    "empty": 1,
    "ones": 1,
    "full": 2,
    "cumsum": 2,
    "cumprod": 2,
}

#: ufunc methods that take ``dtype`` (again: its positional index).
_UFUNC_METHODS = {
    "reduce": 2,
    "accumulate": 2,
    "reduceat": 3,
}

#: Terminal names a ufunc-valued expression may have in this codebase:
#: the numpy ufuncs the operators use, the ``InvertibleOperator.apply``
#: attribute, and the local ``apply_ufunc`` convention of the batch
#: kernels.  ``operator.accumulate`` (the dtype-polymorphic wrapper) is
#: deliberately *not* matched — its callers pre-promote their arrays.
_UFUNC_BASES = {
    "add",
    "subtract",
    "multiply",
    "divide",
    "true_divide",
    "bitwise_xor",
    "bitwise_and",
    "bitwise_or",
    "maximum",
    "minimum",
    "apply",
    "apply_ufunc",
}


class DtypeSafetyRule(Rule):
    """Flag dtype-inferring numpy allocations/reductions in hot layers."""

    rule_id = "dtype-safety"
    description = (
        "numpy allocation/reduction calls in repro/{core,sparse,query} "
        "must pass an explicit dtype= (routed through "
        "InvertibleOperator.accumulation_dtype) or out="
    )
    scope = ("repro/core", "repro/sparse", "repro/query")

    def check(self, context: LintContext) -> Iterator[Violation]:
        aliases = numpy_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            hit = self._match(node, aliases)
            if hit is None:
                continue
            name, dtype_position = hit
            if self._has_explicit_dtype(node, dtype_position):
                continue
            yield self.violation(
                context,
                node,
                f"'{name}' call without explicit dtype=; route the "
                "accumulation dtype through "
                "InvertibleOperator.accumulation_dtype (or pass out=)",
            )

    def _match(
        self, call: ast.Call, aliases: set[str]
    ) -> tuple[str, int] | None:
        """``(display name, dtype positional index)`` for covered calls."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        # np.zeros / np.cumsum / ... on a numpy alias.
        if isinstance(func.value, ast.Name) and func.value.id in aliases:
            position = _NUMPY_FUNCTIONS.get(func.attr)
            if position is not None:
                return f"{func.value.id}.{func.attr}", position
        # <ufunc>.reduce / .accumulate / .reduceat.
        position = _UFUNC_METHODS.get(func.attr)
        if position is not None:
            base = terminal_name(func.value)
            if base in _UFUNC_BASES:
                return (
                    dotted_name(func) or f"<expr>.{func.attr}",
                    position,
                )
        return None

    @staticmethod
    def _has_explicit_dtype(call: ast.Call, dtype_position: int) -> bool:
        keywords = keyword_names(call)
        if "dtype" in keywords or "out" in keywords:
            return True
        return len(call.args) > dtype_position
