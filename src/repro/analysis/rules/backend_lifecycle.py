"""backend-lifecycle: every backend acquisition released or transferred.

The :class:`~repro.index.backend.ArrayBackend` contract (PR 6/8/9) makes
``make_backend()`` / ``subscope(tag)`` results *resources*: a
:class:`MemmapBackend` scope owns spill files that outlive garbage
collection, so an acquisition that reaches an exit path unreleased and
untransferred leaks disk for the life of the process — and the inverse
mistake, calling ``release()`` on a backend the *caller* provided,
unlinks sibling builds' live arrays (the PR 9 review bug: an aborted
``ingest_per_scan`` released a shared root, deleting spill files other
builds were still serving).

The rule runs :func:`repro.analysis.ownership.analyze_function` over
every function in scope and reports two distinct violations:

* a **leak** — an ``OWNED`` (or conditionally owned) acquisition
  reaching a ``return`` / ``raise`` / fall-through exit with no
  dominating ``release()`` or ownership transfer (return,
  attribute/subscript store, or being passed to another call).
  Exception paths count: an escape inside a ``try`` body does *not*
  satisfy the ``except``-handler's re-raise, because the exception may
  have fired first.
* a **caller-owned release** — ``release()`` on a parameter (or an
  unguarded release of a conditionally-owned binding).  Conditional
  ownership must release behind a flag (``if owns_root:``) or an
  identity test (``if build_backend is not None:``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.ownership import Ownership, analyze_function

#: Method names whose call results are tracked resources.
ACQUISITION_ATTRS = frozenset({"subscope", "make_backend"})

_EXIT_LABELS = {
    "return": "the return path",
    "end": "the fall-through exit",
    "raise": "a raise path",
    "handler-raise": "the exception re-raise path",
}


def _is_acquisition(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ACQUISITION_ATTRS
    )


class BackendLifecycleRule(Rule):
    """Backend scopes released on every exit path, never cross-released."""

    rule_id = "backend-lifecycle"
    description = (
        "make_backend()/subscope() acquisitions must be released or "
        "ownership-transferred on every exit path (exception paths "
        "included); releasing a caller-provided backend is a distinct "
        "violation"
    )
    scope = (
        "repro/serving",
        "repro/ingest",
        "repro/index",
        "repro/optimizer",
        "repro/kernels",
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            report = analyze_function(node, _is_acquisition)
            for leak in report.leaks:
                acq = leak.acquisition
                where = _EXIT_LABELS.get(leak.kind, leak.kind)
                exit_line = getattr(leak.exit_node, "lineno", node.lineno)
                yield self.violation(
                    context,
                    acq.node,
                    f"backend {acq.name!r} acquired here is neither "
                    f"released nor ownership-transferred on {where} "
                    f"(line {exit_line}) of {node.name!r}; release it "
                    "in a finally/except or transfer it via "
                    "return/attribute-store",
                )
            for bad in report.borrowed_releases:
                state = bad.acquisition.state
                if state is Ownership.MAYBE:
                    detail = (
                        "is only conditionally owned — guard the "
                        "release with the ownership flag recorded at "
                        "acquisition time (e.g. 'if owns_root:')"
                    )
                else:
                    detail = (
                        "is caller-provided — releasing it unlinks "
                        "arrays sibling builds may still be serving"
                    )
                yield self.violation(
                    context,
                    bad.node,
                    f"release of backend {bad.acquisition.name!r}, "
                    f"which {detail}",
                )
