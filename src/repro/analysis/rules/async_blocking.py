"""async-blocking: no blocking calls directly inside serving coroutines.

The serving layer runs on a single event loop; one blocking call in a
coroutine stalls *every* in-flight request — the exact regression class
PR 7's review caught (a large numpy gather executed inline in
``_answer_scalar`` froze the loop for the duration of the scan).  The
offload architecture is explicit: heavy tier computations go through
``ServingService._run`` (which routes big work to
``loop.run_in_executor``), and anything handed to the executor lives in
a lambda or nested function — which this rule deliberately does not
descend into, so properly offloaded work is allowed by construction.

Flagged when called *directly* in an ``async def`` of ``repro/serving``:

* ``time.sleep`` (use ``asyncio.sleep``);
* the ``open`` builtin and ``Path`` file I/O methods (``read_text``,
  ``write_text``, ``read_bytes``, ``write_bytes``) — use an executor;
* ``.result()`` on futures — awaiting is the non-blocking form;
* numpy bulk/gather operations above the kernel layer (``np.take``,
  ``np.sum``, ``np.einsum``, ``np.dot``, ``np.matmul``, ``np.sort``,
  ``np.argsort``, ``np.cumsum``, ``np.cumprod`` and ufunc
  ``add.at``/``reduce``/``reduceat``/``accumulate``) — these scale with
  cube volume; cheap shape arithmetic (``np.prod`` on a dims tuple,
  ``np.arange``, ``np.zeros``) is not flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import (
    dotted_name,
    numpy_aliases,
    walk_function_body,
)

#: Volume-scaling numpy entry points (``np.<name>(...)``).
BLOCKING_NUMPY = frozenset(
    {
        "take",
        "sum",
        "einsum",
        "dot",
        "matmul",
        "sort",
        "argsort",
        "cumsum",
        "cumprod",
    }
)

#: Blocking ufunc methods (``np.add.at(...)``, ``np.maximum.reduce(...)``).
UFUNC_METHODS = frozenset({"at", "reduce", "reduceat", "accumulate"})

#: Blocking ``Path`` / file-object methods.
FILE_IO_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


class AsyncBlockingRule(Rule):
    """Serving coroutines must offload blocking work, not run it inline."""

    rule_id = "async-blocking"
    description = (
        "no blocking calls (numpy gathers, file I/O, time.sleep, "
        ".result()) directly in a repro/serving coroutine — offload via "
        "run_in_executor helpers"
    )
    scope = ("repro/serving",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        aliases = numpy_aliases(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in walk_function_body(node):
                if not isinstance(child, ast.Call):
                    continue
                reason = self._blocking_reason(child, aliases)
                if reason is not None:
                    yield self.violation(
                        context,
                        child,
                        f"{reason} directly in coroutine {node.name!r} "
                        "blocks the event loop; await the async form or "
                        "offload via run_in_executor",
                    )

    def _blocking_reason(
        self, call: ast.Call, aliases: set[str]
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "builtin open()"
        dotted = dotted_name(func)
        if dotted == "time.sleep":
            return "time.sleep()"
        if isinstance(func, ast.Attribute):
            if func.attr == "result" and not call.args and not call.keywords:
                return "Future.result()"
            if func.attr in FILE_IO_ATTRS:
                return f"file I/O ({func.attr}())"
        if dotted is not None and aliases:
            parts = dotted.split(".")
            if parts[0] in aliases:
                if len(parts) == 2 and parts[1] in BLOCKING_NUMPY:
                    return f"numpy bulk operation {parts[1]}()"
                if len(parts) == 3 and parts[2] in UFUNC_METHODS:
                    return f"numpy ufunc method {parts[1]}.{parts[2]}()"
        return None
