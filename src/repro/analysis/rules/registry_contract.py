"""Rule ``registry-contract`` — registered classes honour their profile.

The registry (:mod:`repro.index.registry`) records *claims* about each
index: its ``kind`` decides which protocol it must satisfy, the
``persistable`` flag promises ``state_dict``/``from_state``, and a
``FuzzProfile(supports_updates=True)`` promises a real
``apply_updates``.  The protocol mixins deliberately ship *abstract*
placeholders for those three (they raise ``NotImplementedError``), so a
class can register capabilities it never implements and nothing fails
until the differential harness — or a user — exercises the gap.

This rule cross-references each ``@register_index`` class against the
actual source of ``repro/index/protocol.py`` (parsed, not imported):
the protocol classes define the required surface per kind, the mixin
classes define what is concretely inherited, and anything still missing
is reported at registration site.
"""

from __future__ import annotations

import ast
import importlib.util
from collections.abc import Iterator
from functools import lru_cache
from pathlib import Path

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import (
    constant_bool,
    decorator_call,
    is_abstract_body,
    keyword_value,
    terminal_name,
)

#: Protocol class per registry kind, as defined in ``index/protocol.py``.
_PROTOCOLS = {"sum": "RangeSumIndex", "max": "RangeMaxIndex"}

#: Mixin bases whose concrete methods count as provided.
_MIXIN_BASES = ("RangeSumIndexMixin", "RangeMaxIndexMixin", "_IndexBase")


@lru_cache(maxsize=1)
def protocol_surface() -> dict[str, dict[str, bool]]:
    """Method tables of ``repro.index.protocol``, parsed from source.

    Returns:
        Map of class name → {method name → concretely implemented}.
        Protocol classes report every method as abstract; mixins report
        ``raise NotImplementedError`` placeholders as abstract and
        everything else as concrete.
    """
    spec = importlib.util.find_spec("repro.index.protocol")
    assert spec is not None and spec.origin is not None
    tree = ast.parse(Path(spec.origin).read_text(encoding="utf-8"))
    tables: dict[str, dict[str, bool]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        methods: dict[str, bool] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                methods[stmt.name] = not is_abstract_body(stmt)
        tables[node.name] = methods
    # Mixins extend _IndexBase; fold the base's table underneath.
    base = tables.get("_IndexBase", {})
    for mixin in ("RangeSumIndexMixin", "RangeMaxIndexMixin"):
        if mixin in tables:
            tables[mixin] = {**base, **tables[mixin]}
    return tables


class RegistryContractRule(Rule):
    """``@register_index`` classes must implement what they declare."""

    rule_id = "registry-contract"
    description = (
        "@register_index classes must statically implement the protocol "
        "surface (per kind) and the capabilities their registration "
        "declares (persistable -> state_dict/from_state, "
        "FuzzProfile.supports_updates -> apply_updates)"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        module_classes = {
            node.name: node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in module_classes.values():
            decorator = decorator_call(cls, "register_index")
            if decorator is None:
                continue
            yield from self._check_class(
                context, cls, decorator, module_classes
            )

    def _check_class(
        self,
        context: LintContext,
        cls: ast.ClassDef,
        decorator: ast.Call,
        module_classes: dict[str, ast.ClassDef],
    ) -> Iterator[Violation]:
        kind = self._registered_kind(decorator)
        provided = self._provided_methods(cls, module_classes)
        missing: list[str] = []

        protocol_cls = _PROTOCOLS.get(kind or "")
        if protocol_cls is not None:
            required = protocol_surface().get(protocol_cls, {})
            missing.extend(
                name
                for name in sorted(required)
                # apply_updates is capability-gated below: the _IndexBase
                # default (raise NotImplementedError) is the *declared*
                # behaviour of a read-only index.
                if name != "apply_updates" and name not in provided
            )

        persistable = constant_bool(
            keyword_value(decorator, "persistable"), default=True
        )
        if persistable:
            missing.extend(
                name
                for name in ("state_dict", "from_state")
                if name not in provided
            )

        profile = keyword_value(decorator, "fuzz_profile")
        if (
            isinstance(profile, ast.Call)
            and terminal_name(profile.func) == "FuzzProfile"
        ):
            supports_updates = constant_bool(
                keyword_value(profile, "supports_updates"), default=True
            )
            if supports_updates and "apply_updates" not in provided:
                missing.append("apply_updates")

        if missing:
            unique = sorted(set(missing))
            yield self.violation(
                context,
                cls,
                f"registered index '{cls.name}' is missing concrete "
                f"implementations required by its registration: "
                f"{', '.join(unique)}",
            )

    @staticmethod
    def _registered_kind(decorator: ast.Call) -> str | None:
        value = keyword_value(decorator, "kind")
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        return None

    def _provided_methods(
        self,
        cls: ast.ClassDef,
        module_classes: dict[str, ast.ClassDef],
        _seen: frozenset[str] = frozenset(),
    ) -> set[str]:
        """Concrete methods available on ``cls``: own defs (minus
        ``NotImplementedError`` placeholders), recognised mixin bases,
        and bases defined in the same module."""
        provided: set[str] = set()
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and not is_abstract_body(
                stmt
            ):
                provided.add(stmt.name)
        tables = protocol_surface()
        for base in cls.bases:
            base_name = terminal_name(base)
            if base_name is None or base_name in _seen:
                continue
            if base_name in _MIXIN_BASES:
                provided.update(
                    name
                    for name, concrete in tables.get(base_name, {}).items()
                    if concrete
                )
            elif base_name in module_classes and base_name != cls.name:
                provided.update(
                    self._provided_methods(
                        module_classes[base_name],
                        module_classes,
                        _seen | {cls.name},
                    )
                )
        return provided
