"""Rule ``memmap-flush`` — update paths flush backend-held arrays.

The shipped bug class (PR 3): ``apply_updates`` mutated a
``MemmapBackend`` spill file's pages but never called
``backend.flush()``, so a crash — or a reader opening the spill file by
path — saw stale pre-update values.  The contract since then: every
public update entry point that writes into backend-held storage syncs
the backend before returning, on *every* return path.

Statically, "backend-held storage" is the repo's known inventory of
backend-materialized array attributes (``source``, ``prefix``,
``blocked_prefix``, ``values``, ``positions``, and the streaming
builder's ``cells`` accumulators).  The rule triggers on public
functions/methods named ``apply*`` or ``finalize*`` (the ingest
pipeline's public mutation boundary) that subscript-store into
``self.<attr>[...]`` or ``<param>.<attr>[...]`` (one level of local
view aliasing like ``view = self.prefix[i]; view[...] = x`` is
tracked), and then requires a ``*.flush()`` call to precede every
``return`` (and the implicit end of the function).  Private helpers are
exempt: flushing is the public boundary's job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation

#: Attribute names the backends materialize (see ``index/backend.py``
#: call sites, plus the ``repro.ingest`` accumulators' ``cells``):
#: mutating one of these must be followed by a flush.
BACKED_ARRAY_ATTRS = frozenset(
    {"source", "prefix", "blocked_prefix", "values", "positions", "cells"}
)

#: Public function-name prefixes that mark a mutation boundary: update
#: entry points (``apply*``) and the streaming builder's finalize sweeps
#: (``finalize*``).
_TRIGGER_PREFIXES = ("apply", "finalize")


class MemmapFlushRule(Rule):
    """Public ``apply*`` mutators must ``backend.flush()`` before returning."""

    rule_id = "memmap-flush"
    description = (
        "public apply*/finalize* functions that mutate backend-held "
        "arrays (source/prefix/blocked_prefix/values/positions/cells) "
        "must call backend.flush() on every return path"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_") or not node.name.startswith(
                _TRIGGER_PREFIXES
            ):
                continue
            yield from self._check_function(context, node)

    def _check_function(
        self, context: LintContext, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        mutated = self._mutated_backed_attrs(func)
        if not mutated:
            return
        attrs = ", ".join(sorted(mutated))
        for node in self._unflushed_returns(func):
            yield self.violation(
                context,
                node,
                f"'{func.name}' mutates backend-held array(s) [{attrs}] "
                "but returns without calling backend.flush()",
            )
        if not self._implicit_end_flushed(func):
            yield self.violation(
                context,
                func,
                f"'{func.name}' mutates backend-held array(s) [{attrs}] "
                "but can fall off the end without calling "
                "backend.flush()",
            )

    # -- mutation detection ---------------------------------------------

    def _mutated_backed_attrs(self, func: ast.FunctionDef) -> set[str]:
        """Backed attribute names this function subscript-stores into."""
        params = {arg.arg for arg in func.args.args}
        params.discard("self")
        aliases: dict[str, str] = {}
        mutated: set[str] = set()
        nodes = list(_own_statements(func))
        for node in nodes:
            if isinstance(node, ast.Assign):
                self._track_alias(node, params, aliases)
        for node in nodes:
            for target in _store_subscript_targets(node):
                attr = self._backed_attr(target.value, params, aliases)
                if attr is not None:
                    mutated.add(attr)
        return mutated

    def _track_alias(
        self,
        node: ast.Assign,
        params: set[str],
        aliases: dict[str, str],
    ) -> None:
        """Record ``view = self.prefix[...]``-style local aliases."""
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return
        attr = self._backed_attr(node.value, params, aliases)
        if attr is not None:
            aliases[node.targets[0].id] = attr

    def _backed_attr(
        self,
        node: ast.expr,
        params: set[str],
        aliases: dict[str, str],
    ) -> str | None:
        """The backed attribute an expression reads from, if any."""
        current = node
        while isinstance(current, ast.Subscript):
            current = current.value
        if isinstance(current, ast.Name):
            return aliases.get(current.id)
        if isinstance(current, ast.Attribute):
            base = current.value
            while isinstance(base, ast.Subscript):
                base = base.value
            if isinstance(base, ast.Name) and (
                base.id == "self" or base.id in params
            ):
                if current.attr in BACKED_ARRAY_ATTRS:
                    return current.attr
        return None

    # -- return-path analysis -------------------------------------------

    def _unflushed_returns(
        self, func: ast.FunctionDef
    ) -> Iterator[ast.Return]:
        parents = _parent_map(func)
        for node in _own_statements(func):
            if isinstance(node, ast.Return) and not _flush_precedes(
                node, func, parents
            ):
                yield node

    @staticmethod
    def _implicit_end_flushed(func: ast.FunctionDef) -> bool:
        """Whether falling off the end of the body passes a flush.

        Only unconditionally executed statements count: the top-level
        statement list, expanded through ``try``/``with`` wrappers.  If
        the body always returns/raises before the end, the implicit
        path is unreachable and vacuously fine.
        """
        statements = _unconditional_statements(func.body)
        if any(
            isinstance(stmt, (ast.Return, ast.Raise)) for stmt in statements
        ):
            return True
        return any(_contains_flush(stmt) for stmt in statements)


def _own_statements(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk the function, skipping nested function/lambda subtrees."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.append(child)


def _store_subscript_targets(node: ast.AST) -> Iterator[ast.Subscript]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if isinstance(target, ast.Subscript):
            yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            yield from (
                element
                for element in target.elts
                if isinstance(element, ast.Subscript)
            )


def _unconditional_statements(body: list[ast.stmt]) -> list[ast.stmt]:
    """Statements that always execute: the block itself, with
    ``try``/``with`` wrappers expanded (their bodies run on the happy
    path)."""
    statements: list[ast.stmt] = []
    for stmt in body:
        statements.append(stmt)
        if isinstance(stmt, ast.Try):
            statements.extend(_unconditional_statements(stmt.body))
            statements.extend(_unconditional_statements(stmt.finalbody))
        elif isinstance(stmt, ast.With):
            statements.extend(_unconditional_statements(stmt.body))
    return statements


def _parent_map(func: ast.FunctionDef) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _contains_flush(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "flush"
        ):
            return True
    return False


def _flush_precedes(
    node: ast.Return,
    func: ast.FunctionDef,
    parents: dict[ast.AST, ast.AST],
) -> bool:
    """Whether some statement textually dominating ``node`` flushes.

    Walks up the block structure: for each enclosing block, every
    statement *before* the one containing the return is inspected.  A
    flush in a sibling branch does not count; a flush anywhere inside a
    preceding statement (loop, conditional) optimistically does.
    """
    current: ast.AST = node
    while current is not func:
        parent = parents.get(current)
        if parent is None:
            break
        for field_value in ast.iter_fields(parent):
            block = field_value[1]
            if not isinstance(block, list) or current not in block:
                continue
            index = block.index(current)
            if any(_contains_flush(stmt) for stmt in block[:index]):
                return True
        current = parent
    return False
