"""Small AST helpers shared by the cubelint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.AST) -> str | None:
    """The last component of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the module binds to the numpy package (``np``, ``numpy``...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def keyword_names(call: ast.Call) -> set[str]:
    """Explicit keyword argument names of a call (``**kwargs`` excluded)."""
    return {kw.arg for kw in call.keywords if kw.arg is not None}


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    """The AST value of keyword ``name``, if passed explicitly."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def constant_bool(node: ast.expr | None, default: bool) -> bool:
    """A literal True/False keyword value; anything dynamic → default."""
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return default


def decorator_call(
    node: ast.ClassDef | ast.FunctionDef | ast.AsyncFunctionDef,
    suffix: str,
) -> ast.Call | None:
    """The first decorator that is a call to ``...<suffix>``, if any."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = dotted_name(decorator.func)
            if name is not None and name.split(".")[-1] == suffix:
                return decorator
    return None


def has_decorator(node: ast.FunctionDef, *names: str) -> bool:
    """Whether any decorator's terminal name is one of ``names``."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        terminal = terminal_name(target)
        if terminal in names:
            return True
    return False


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Every Call node under ``node`` (nested functions included)."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def walk_function_body(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function's own statements, skipping nested function defs.

    Nested ``def``/``async def``/``lambda`` nodes are yielded (they are
    statements of this function) but never descended into — their
    bodies run on a different schedule and belong to them.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def is_abstract_body(func: ast.FunctionDef) -> bool:
    """Whether a function body is (docstring +) ``raise NotImplementedError``.

    Used to tell protocol *defaults* from protocol *placeholders* when
    deciding which mixin methods count as provided.
    """
    body = list(func.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    if not body:
        return True
    if len(body) == 1 and isinstance(body[0], (ast.Pass, ast.Expr)):
        return True
    return all(_raises_not_implemented(stmt) for stmt in body)


def _raises_not_implemented(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Raise) or stmt.exc is None:
        return False
    target = stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
    return terminal_name(target) == "NotImplementedError"
