"""Rule ``determinism`` — no unseeded randomness in verify/benchmarks.

The differential harness's whole value is replayability: every scenario
is derived from an explicit seed token (``repro.verify.scenarios``), and
every benchmark pins its generator so numbers are comparable across
runs.  One ``np.random.rand()`` — or a ``default_rng()`` with no seed —
quietly breaks both.

The serving layer is held to the same standard: its load generator
(``repro.serving.loadgen``) feeds benchmark numbers and overload tests,
and its worker pool sizes must not float with the host's core count.
So is the optimizer: physical-design advice replayed from the same
observer window must reproduce the same plan, or the adaptive
controller's swap history becomes impossible to audit.

The streaming builder (``repro.ingest``) joins the scope for the same
reason as the optimizer: a streamed build must be replayable — the
bit-identity contract against the in-memory reference is only testable
when nothing in the ingest path draws from an ambient stream.

The rule flags, inside ``src/repro/verify``, ``src/repro/kernels``,
``src/repro/serving``, ``src/repro/optimizer``, ``src/repro/ingest``
and ``benchmarks/``:

* any draw from the numpy *global* stream (``np.random.<fn>`` other
  than constructing generators/bit-generators/seed-sequences),
* ``np.random.default_rng()`` / ``SeedSequence()`` called with no seed,
* any use of the stdlib ``random`` module's global stream (and
  ``random.Random()`` with no seed),
* worker pools sized implicitly: a ``ThreadPoolExecutor`` /
  ``ProcessPoolExecutor`` constructed without an explicit worker count
  scales with the host's core count, so kernel benchmark numbers (shard
  counts, speedups) silently change between runners.

The repo convention is a locally constructed, explicitly seeded
``np.random.Generator`` passed down as ``rng``, and pool sizes pinned
through ``REPRO_KERNEL_WORKERS`` (see ``benchmarks/_env.py``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import numpy_aliases, terminal_name

#: Executor constructors whose worker count must be explicit.
_POOL_CONSTRUCTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor"}

#: ``np.random`` attributes that *construct* seedable objects.
_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Constructors that must receive an explicit seed argument.
_NEED_SEED = {"default_rng", "SeedSequence", "PCG64", "MT19937", "Philox"}


class DeterminismRule(Rule):
    """Flag unseeded ``np.random`` / ``random`` usage."""

    rule_id = "determinism"
    description = (
        "repro/verify, repro/kernels, repro/serving, repro/optimizer, "
        "repro/ingest and benchmarks must not draw from unseeded global "
        "random streams or size worker pools off the host's core count; "
        "seed every generator explicitly and pin max_workers"
    )
    scope = (
        "repro/verify",
        "repro/kernels",
        "repro/serving",
        "repro/optimizer",
        "repro/ingest",
        "benchmarks",
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        np_names = numpy_aliases(context.tree)
        random_modules, random_names = _stdlib_random_imports(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_numpy(context, node, np_names)
            yield from self._check_stdlib(
                context, node, random_modules, random_names
            )
            yield from self._check_pool(context, node)

    def _check_numpy(
        self, context: LintContext, call: ast.Call, np_names: set[str]
    ) -> Iterator[Violation]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if not (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in np_names
        ):
            return
        name = f"{base.value.id}.random.{func.attr}"
        if func.attr not in _CONSTRUCTORS:
            yield self.violation(
                context,
                call,
                f"'{name}' draws from the unseeded numpy global stream; "
                "use an explicitly seeded np.random.default_rng(seed)",
            )
        elif func.attr in _NEED_SEED and not call.args and not call.keywords:
            yield self.violation(
                context,
                call,
                f"'{name}()' without a seed is entropy-seeded; pass an "
                "explicit seed for replayable runs",
            )

    def _check_pool(
        self, context: LintContext, call: ast.Call
    ) -> Iterator[Violation]:
        """Flag executor constructions with no explicit worker count."""
        name = terminal_name(call.func)
        if name not in _POOL_CONSTRUCTORS:
            return
        if call.args:
            return  # first positional argument is max_workers
        if any(k.arg == "max_workers" for k in call.keywords):
            return
        yield self.violation(
            context,
            call,
            f"'{name}()' without max_workers sizes the pool from the "
            "host's core count; pin it explicitly (e.g. via "
            "REPRO_KERNEL_WORKERS) so shard counts replay across runners",
        )

    def _check_stdlib(
        self,
        context: LintContext,
        call: ast.Call,
        modules: set[str],
        names: set[str],
    ) -> Iterator[Violation]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in modules
        ):
            if func.attr == "Random" and (call.args or call.keywords):
                return
            yield self.violation(
                context,
                call,
                f"stdlib '{func.value.id}.{func.attr}' uses the global "
                "random stream; use a seeded np.random.default_rng "
                "generator instead",
            )
        elif isinstance(func, ast.Name) and func.id in names:
            if func.id == "Random" and (call.args or call.keywords):
                return
            yield self.violation(
                context,
                call,
                f"stdlib random '{func.id}' uses an unseeded stream; use "
                "a seeded np.random.default_rng generator instead",
            )


def _stdlib_random_imports(
    tree: ast.Module,
) -> tuple[set[str], set[str]]:
    """``(module aliases, imported member names)`` for stdlib ``random``."""
    modules: set[str] = set()
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    modules.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return modules, names
