"""task-tracking: every ``create_task`` result retained or awaited.

The event loop keeps only a *weak* reference to tasks: a task whose
handle is dropped can be garbage-collected mid-flight, silently
cancelling the work (the PR 7 review caught exactly this — coalescer
flush tasks vanishing under memory pressure; the fix keeps them in
``self._flush_tasks`` with a done-callback discard).

A ``create_task(...)`` call is compliant when its result is

* awaited (``await create_task(...)``),
* stored on an object or into a container (``self._task = ...``,
  ``batch.timer = ...``, ``tasks[k] = ...``),
* bound to a local that is actually *used* later (registered in a set,
  cancelled, returned...),
* passed directly to another call (``tasks.append(create_task(...))``),
* returned, or
* spawned on an ``asyncio.TaskGroup`` receiver (the group owns it).

Flagged: a bare ``create_task(...)`` expression statement, and a local
binding never read again.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import terminal_name


class TaskTrackingRule(Rule):
    """``asyncio.create_task`` handles must be kept alive."""

    rule_id = "task-tracking"
    description = (
        "asyncio.create_task results must be retained (attribute/"
        "container store, tracked local) or awaited — untracked tasks "
        "are GC-cancellable"
    )
    scope = ("repro/serving",)

    def check(self, context: LintContext) -> Iterator[Violation]:
        for func in ast.walk(context.tree):
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            yield from self._check_function(context, func)

    def _check_function(
        self,
        context: LintContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(func):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(child, node)
        group_names = _taskgroup_receivers(func)
        for call in ast.walk(func):
            if not isinstance(call, ast.Call):
                continue
            if terminal_name(call.func) != "create_task":
                continue
            if _receiver_name(call.func) in group_names:
                continue  # the TaskGroup owns its children
            parent = parents.get(call)
            if isinstance(parent, ast.Await):
                continue
            if isinstance(parent, ast.Call) and call in (
                list(parent.args) + [k.value for k in parent.keywords]
            ):
                continue  # handed to append()/add()/gather(...)
            if isinstance(parent, ast.Return):
                continue
            if isinstance(parent, ast.Expr):
                yield self.violation(
                    context,
                    call,
                    "create_task() result is discarded — the event loop "
                    "holds only a weak reference, so the task can be "
                    "garbage-collected mid-flight; retain the handle",
                )
                continue
            if isinstance(parent, ast.Assign):
                targets = [
                    t.id for t in parent.targets if isinstance(t, ast.Name)
                ]
                if len(targets) == len(parent.targets) and not (
                    self._used_later(func, parent)
                ):
                    bound = ", ".join(repr(t) for t in targets)
                    yield self.violation(
                        context,
                        call,
                        f"create_task() handle is bound to {bound} but "
                        "never used afterwards — an unused local keeps "
                        "the task alive no longer than no binding at "
                        "all once the frame exits; track or await it",
                    )

    def _used_later(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        assign: ast.Assign,
    ) -> bool:
        names = {t.id for t in assign.targets if isinstance(t, ast.Name)}
        boundary = int(getattr(assign, "end_lineno", assign.lineno))
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in names
                and node.lineno > boundary
            ):
                return True
        return False


def _taskgroup_receivers(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names bound by ``async with asyncio.TaskGroup() as tg:``."""
    names: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and terminal_name(expr.func) == "TaskGroup"
                and isinstance(item.optional_vars, ast.Name)
            ):
                names.add(item.optional_vars.id)
    return names


def _receiver_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return None
