"""The cubelint rule set.

Each rule lives in its own module; :func:`default_rules` assembles the
canonical instances in reporting order.  Adding a rule means adding a
module here and appending it to :data:`_RULE_CLASSES` — the engine,
CLI, suppression and baseline machinery pick it up automatically.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.backend_lifecycle import BackendLifecycleRule
from repro.analysis.rules.box_validation import BoxValidationRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype_safety import DtypeSafetyRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.memmap_flush import MemmapFlushRule
from repro.analysis.rules.registry_contract import RegistryContractRule
from repro.analysis.rules.task_tracking import TaskTrackingRule

_RULE_CLASSES: tuple[type[Rule], ...] = (
    DtypeSafetyRule,
    BoxValidationRule,
    RegistryContractRule,
    MemmapFlushRule,
    DeterminismRule,
    BackendLifecycleRule,
    AsyncBlockingRule,
    LockDisciplineRule,
    TaskTrackingRule,
)

__all__ = [
    "AsyncBlockingRule",
    "BackendLifecycleRule",
    "BoxValidationRule",
    "DeterminismRule",
    "DtypeSafetyRule",
    "LockDisciplineRule",
    "MemmapFlushRule",
    "RegistryContractRule",
    "TaskTrackingRule",
    "default_rules",
    "rules_by_id",
]


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_id() -> dict[str, Rule]:
    """The shipped rules keyed by their stable ids."""
    return {rule.rule_id: rule for rule in default_rules()}
