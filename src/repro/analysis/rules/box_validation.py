"""Rule ``box-validation`` — registered entry points validate their boxes.

The shipped bug class (PR 3): query paths that index backend arrays with
unvalidated bounds either crash on out-of-range boxes or — worse —
silently answer the wrong region via negative-index wraparound, and the
empty-range identity rule (``check_query_box(..., allow_empty=True)``)
only holds when every entry point actually consults it.

The rule finds every ``@register_index`` class and requires each public
entry-point method defined on it (``query``, ``query_many``, and
anything starting with ``sum``/``max``/``range_sum``/``range_max``) to
validate before touching storage: either a direct call to
``check_query_box`` / ``normalize_query_arrays`` / ``validate_range``,
or delegation to another method of the same class that validates
(resolved as a fixpoint over the class's own call graph, so
``sum_range → range_sum → _check_box → check_query_box`` passes).

Methods ending in ``_unchecked`` are exempt: that suffix is the
protocol's documented pre-validated hook (``range_sum_unchecked``),
whose contract is precisely that the caller — the checked entry point or
the batch mixin — has already validated the box once for the whole
batch.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import (
    decorator_call,
    has_decorator,
    terminal_name,
    walk_function_body,
)

#: Callables that perform the normative box/bounds validation.
_VALIDATORS = {
    "check_query_box",
    "normalize_query_arrays",
    "validate_range",
}

_ENTRY_EXACT = {"query", "query_many"}
_ENTRY_PREFIXES = ("sum", "max", "range_sum", "range_max")


def _is_entry_point(name: str) -> bool:
    if name.startswith("_"):
        return False
    if name.endswith("_unchecked"):
        # The protocol's pre-validated hook: validation is the caller's
        # contract (hoisted once per batch by the sum_many default).
        return False
    return name in _ENTRY_EXACT or name.startswith(_ENTRY_PREFIXES)


class BoxValidationRule(Rule):
    """Entry points on registered indexes must call ``check_query_box``."""

    rule_id = "box-validation"
    description = (
        "public query/query_many/sum*/max* methods on @register_index "
        "classes must validate via check_query_box (directly or through "
        "a validated delegate) before touching backend arrays"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if decorator_call(node, "register_index") is None:
                continue
            yield from self._check_class(context, node)

    def _check_class(
        self, context: LintContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef)
        }
        validated = self._validated_fixpoint(methods)
        for name, func in sorted(methods.items()):
            if not _is_entry_point(name):
                continue
            if has_decorator(func, "property", "cached_property", "setter"):
                continue
            if name in validated:
                continue
            yield self.violation(
                context,
                func,
                f"entry point '{cls.name}.{name}' does not validate its "
                "query box: call check_query_box (or delegate to a "
                "method that does) before touching backend arrays",
            )

    @staticmethod
    def _validated_fixpoint(
        methods: dict[str, ast.FunctionDef],
    ) -> set[str]:
        """Methods that validate directly or via same-class delegation."""
        direct: set[str] = set()
        delegates: dict[str, set[str]] = {}
        for name, func in methods.items():
            called_self: set[str] = set()
            for call in _body_calls(func):
                target = call.func
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")
                ):
                    called_self.add(target.attr)
                if terminal_name(target) in _VALIDATORS:
                    direct.add(name)
            delegates[name] = called_self
        validated = set(direct)
        changed = True
        while changed:
            changed = False
            for name, called in delegates.items():
                if name not in validated and called & validated:
                    validated.add(name)
                    changed = True
        return validated


def _body_calls(func: ast.FunctionDef) -> Iterator[ast.Call]:
    for node in walk_function_body(func):
        if isinstance(node, ast.Call):
            yield node
