"""lock-discipline: tier reads under the read lock, mutations under write.

The serving layer's correctness story (SERVING.md, "Update consistency")
is a writer-preferred rwlock per cube: tier computations hold the read
side so an update cannot tear the tiers mid-scan, and every mutation —
including the generation bump and result-cache invalidation that make
stale cache entries detectable — happens on the write side *before* the
lock is dropped.  PR 8's review found the failure mode this rule
automates: a generation bump sequenced after the ``write_locked`` block
let a racing read cache a stale answer under the new generation.

Three checks, all scoped to ``repro/serving``:

* **Tier computations** (``run_scalar`` / ``run_batch`` call sites in
  ``service.py`` / ``adaptive.py``) must run under the rwlock — either
  lexically inside an ``async with ...read_locked()/write_locked():``
  block, or inside a lambda/nested function handed to a *guard helper*
  (a callee, resolved through the project call graph, that only ever
  invokes that parameter under the lock — ``ServingService._run_read``
  is the canonical one), or in a function whose every resolved call
  site is itself under the lock.
* **Mutations** (``apply_updates`` call sites in those files, plus every
  ``.generation`` bump and ``invalidate_cube(...)`` call anywhere in
  serving) must be under the *write* side, by the same lexical or
  interprocedural reasoning (the nested ``run()`` closure invoked
  inside ``_apply_update``'s write block is the motivating case).
* **Completeness**: every ``write_locked`` block that applies updates
  (directly or through a locally-resolved callee) must also bump
  ``.generation`` before the lock is released.

Resolution is optimistic: an unresolvable call or an empty caller set
means "no information" and the lexical evidence decides.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator

from repro.analysis.callgraph import FunctionInfo, ModuleInfo, Project
from repro.analysis.engine import LintContext, Rule, Violation
from repro.analysis.rules._astutil import terminal_name

#: Context-manager method names that take the rwlock.
READ_LOCKS = frozenset({"read_locked", "write_locked"})
WRITE_LOCKS = frozenset({"write_locked"})

#: Tier computations that must hold (at least) the read side.
READ_CALLS = frozenset({"run_scalar", "run_batch"})
#: Tier mutations that must hold the write side.
WRITE_CALLS = frozenset({"apply_updates"})

AnyFunction = ast.FunctionDef | ast.AsyncFunctionDef


class LockDisciplineRule(Rule):
    """rwlock read side for tier reads, write side for mutations."""

    rule_id = "lock-discipline"
    description = (
        "tier reads must hold the rwlock read side and mutations the "
        "write side; generation bumps and cache invalidation must not "
        "be reachable outside the write lock"
    )
    scope = ("repro/serving",)

    def __init__(self) -> None:
        self._guarded: dict[tuple[str, str, frozenset[str]], bool] = {}
        self._module_parents: dict[str, dict[ast.AST, ast.AST]] = {}

    def check(self, context: LintContext) -> Iterator[Violation]:
        project = context.project_view()
        module = project.module_for(context.path)
        if module is None:
            module = project.add_module(context.path, context.tree)
        parents = self._parents_for(module)

        yield from self._check_tier_calls(context, project, module, parents)
        yield from self._check_mutations(context, project, module, parents)
        yield from self._check_blocks_bump(context, project, module)

    # -- (A) tier computations ------------------------------------------

    def _check_tier_calls(
        self,
        context: LintContext,
        project: Project,
        module: ModuleInfo,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Violation]:
        for call in ast.walk(context.tree):
            if not isinstance(call, ast.Call):
                continue
            name = terminal_name(call.func)
            if name in READ_CALLS:
                kinds, side = READ_LOCKS, "read"
            elif name in WRITE_CALLS:
                kinds, side = WRITE_LOCKS, "write"
            else:
                continue
            if self._call_protected(call, kinds, project, module, parents):
                continue
            yield self.violation(
                context,
                call,
                f"tier {'mutation' if side == 'write' else 'computation'} "
                f"{name}() runs outside the rwlock {side} side — it can "
                "observe (or cause) torn tiers while an update is "
                "mid-batch",
            )

    # -- (B) generation bumps / cache invalidation ----------------------

    def _check_mutations(
        self,
        context: LintContext,
        project: Project,
        module: ModuleInfo,
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                if not any(
                    isinstance(t, ast.Attribute) and t.attr == "generation"
                    for t in targets
                ):
                    continue
                what = "generation bump"
            elif (
                isinstance(node, ast.Call)
                and terminal_name(node.func) == "invalidate_cube"
            ):
                what = "cache invalidation"
            else:
                continue
            if self._node_protected(
                node, WRITE_LOCKS, project, module, parents
            ):
                continue
            yield self.violation(
                context,
                node,
                f"{what} outside the write lock — a racing read can "
                "cache a stale answer under the new generation (or "
                "miss the invalidation entirely)",
            )

    # -- (C) mutation blocks must bump --------------------------------

    def _check_blocks_bump(
        self,
        context: LintContext,
        project: Project,
        module: ModuleInfo,
    ) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not _lock_items(node, WRITE_LOCKS):
                continue
            if not self._block_has(
                node, project, module, self._is_apply_updates
            ):
                continue
            if self._block_has(node, project, module, self._is_bump):
                continue
            yield self.violation(
                context,
                node,
                "this write-locked block applies updates but never "
                "bumps .generation before releasing the lock — readers "
                "admitted after the unlock can cache answers the "
                "update already invalidated",
            )

    def _is_apply_updates(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and terminal_name(node.func) in WRITE_CALLS
        )

    def _is_bump(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            return any(
                isinstance(t, ast.Attribute) and t.attr == "generation"
                for t in targets
            )
        return False

    def _block_has(
        self,
        block: ast.With | ast.AsyncWith,
        project: Project,
        module: ModuleInfo,
        predicate: Callable[[ast.AST], bool],
    ) -> bool:
        """Whether the block (or a locally-resolved callee) matches."""
        for stmt in block.body:
            for node in ast.walk(stmt):
                if predicate(node):
                    return True
                if isinstance(node, ast.Call):
                    resolved = project.resolve_call(node, module)
                    if resolved is not None and any(
                        predicate(inner)
                        for inner in ast.walk(resolved.node)
                    ):
                        return True
        return False

    # -- lock reasoning -------------------------------------------------

    def _parents_for(self, module: ModuleInfo) -> dict[ast.AST, ast.AST]:
        cached = self._module_parents.get(module.path)
        if cached is None:
            cached = {}
            for node in ast.walk(module.tree):
                for child in ast.iter_child_nodes(node):
                    cached.setdefault(child, node)
            self._module_parents[module.path] = cached
        return cached

    def _call_protected(
        self,
        call: ast.Call,
        kinds: frozenset[str],
        project: Project,
        module: ModuleInfo,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        return self._node_protected(call, kinds, project, module, parents)

    def _node_protected(
        self,
        node: ast.AST,
        kinds: frozenset[str],
        project: Project,
        module: ModuleInfo,
        parents: dict[ast.AST, ast.AST],
        depth: int = 0,
    ) -> bool:
        if _under_lock(node, parents, kinds):
            return True
        if depth >= 3:
            return False
        # Inside a lambda / nested def passed to a guard helper?
        carrier, outer_call = _enclosing_callable_argument(node, parents)
        if carrier is not None and outer_call is not None:
            target = project.resolve_call(outer_call, module)
            if target is not None and isinstance(target, FunctionInfo):
                param = _param_for_argument(outer_call, carrier, target)
                if param is not None and self._param_guarded(
                    target, param, kinds
                ):
                    return True
        # Inside a function whose every resolved call site is locked?
        owner = project.enclosing_function(node)
        if owner is None:
            return False
        sites = project.callers(owner)
        if not sites:
            return False
        owner_module = project.by_path.get(owner.path)
        for caller, call_site in sites:
            caller_module = project.by_path.get(caller.path)
            if caller_module is None:
                return False
            site_parents = self._parents_for(caller_module)
            if not self._node_protected(
                call_site,
                kinds,
                project,
                caller_module,
                site_parents,
                depth + 1,
            ):
                return False
        del owner_module
        return True

    def _param_guarded(
        self, target: FunctionInfo, param: str, kinds: frozenset[str]
    ) -> bool:
        """Whether ``target`` only ever touches ``param`` under the lock.

        The interprocedural heart of the rule: a helper like
        ``ServingService._run_read`` whose sole use of its ``fn``
        parameter sits inside ``async with cube.rwlock.read_locked():``
        extends the lock to every callable its callers pass in.
        """
        key = (target.qualname, param, kinds)
        cached = self._guarded.get(key)
        if cached is not None:
            return cached
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(target.node):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(child, node)
        loads = [
            node
            for node in ast.walk(target.node)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id == param
        ]
        result = bool(loads) and all(
            _under_lock(load, parents, kinds) for load in loads
        )
        self._guarded[key] = result
        return result


def _lock_items(
    node: ast.With | ast.AsyncWith, kinds: frozenset[str]
) -> bool:
    return any(
        isinstance(item.context_expr, ast.Call)
        and terminal_name(item.context_expr.func) in kinds
        for item in node.items
    )


def _under_lock(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    kinds: frozenset[str],
) -> bool:
    """Whether ``node`` sits in the *body* of a matching with-block."""
    current = node
    while True:
        parent = parents.get(current)
        if parent is None:
            return False
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            in_body = any(
                current is stmt or _contains(stmt, current)
                for stmt in parent.body
            )
            if in_body and _lock_items(parent, kinds):
                return True
        current = parent


def _contains(container: ast.AST, node: ast.AST) -> bool:
    return any(node is child for child in ast.walk(container))


def _enclosing_callable_argument(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> tuple[ast.AST | None, ast.Call | None]:
    """The innermost lambda/def containing ``node`` that is itself an
    argument of a call, plus that call."""
    current = parents.get(node)
    while current is not None:
        if isinstance(
            current, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            holder = parents.get(current)
            if isinstance(holder, ast.keyword):
                holder = parents.get(holder)
            if isinstance(holder, ast.Call):
                return current, holder
            return None, None
        current = parents.get(current)
    return None, None


def _param_for_argument(
    call: ast.Call, argument: ast.AST, target: FunctionInfo
) -> str | None:
    """The ``target`` parameter name that receives ``argument``."""
    params = target.parameters()
    offset = 0
    if (
        target.is_method
        and params
        and params[0] in ("self", "cls")
        and isinstance(call.func, ast.Attribute)
    ):
        offset = 1
    for index, arg in enumerate(call.args):
        if arg is argument:
            position = offset + index
            return params[position] if position < len(params) else None
    for kw in call.keywords:
        if kw.value is argument:
            return kw.arg
    return None
