"""Ownership and escape tracking along function exit paths.

The dataflow skeleton behind the ``backend-lifecycle`` rule (and any
future resource-discipline rule): given a predicate that recognizes
*acquisition* calls (``make_backend()``, ``.subscope(...)``), classify
each local binding's ownership and check every exit path of the
function for a leak or an ownership violation.

Ownership states
----------------

``OWNED``
    The local was bound to an acquisition's result in this function —
    releasing it is this function's job unless it *escapes* (transfers
    ownership out).
``BORROWED``
    The local aliases a function parameter: the caller owns it.
    Releasing a borrowed resource is always a violation — the shipped
    bug class (PR 9 review): an aborted ingest released a
    caller-provided root backend and unlinked sibling builds' live
    spill files.
``MAYBE``
    Conditionally one or the other (``root = plan.make_backend() if
    backend is None else backend``).  Releasing it is legal only behind
    a *guard* — an ``if`` whose test is a plain flag name (the
    ``owns_root`` idiom) or an identity test — which is how the fixed
    code records which arm was taken.

Escape events (ownership transfer out of the function)
------------------------------------------------------

* returned (the name appears anywhere in a ``return`` expression);
* stored on an object (``self.x = name``, ``obj.attr = Foo(name)``) or
  into a container (``d[k] = name``);
* passed as an argument to any call (optimistically: constructors and
  sinks like ``IngestResult(backend=root)`` take ownership; a linter
  that guessed otherwise would drown the tree in false positives).

Exit paths
----------

Every ``return`` statement, the implicit end of the function, every
``raise`` in the main body, and every ``raise`` inside an ``except``
handler.  Handler exits are the subtle ones: an escape *inside the
``try`` body* does not satisfy them — the exception may have fired
before the escape ran — so only events dominating the ``try`` itself or
inside the handler (or its ``finally``) count.  This is exactly the
discipline ``repro/ingest/build.py`` and ``repro/serving/adaptive.py``
follow since their PR 9 review fixes.

Satisfaction uses textual block dominance (an event in a preceding
statement of an enclosing block, scanned into compound statements
optimistically), the same approximation the ``memmap-flush`` rule has
used since PR 4.  It is deliberately optimistic: rules built on it flag
only what is provably wrong under the approximation.
"""

from __future__ import annotations

import ast
import enum
from collections.abc import Callable, Iterator
from dataclasses import dataclass

__all__ = [
    "Acquisition",
    "BorrowedRelease",
    "Leak",
    "Ownership",
    "OwnershipReport",
    "analyze_function",
]

AnyFunction = ast.FunctionDef | ast.AsyncFunctionDef


class Ownership(enum.Enum):
    """Who is responsible for releasing a tracked local."""

    OWNED = "owned"
    BORROWED = "borrowed"
    MAYBE = "maybe"


@dataclass(frozen=True)
class Acquisition:
    """One tracked local binding: name, site, ownership state."""

    name: str
    node: ast.stmt
    state: Ownership


@dataclass(frozen=True)
class Leak:
    """An exit path reached with an owned resource neither released
    nor escaped."""

    acquisition: Acquisition
    exit_node: ast.AST
    #: ``"return"``, ``"end"``, ``"raise"`` or ``"handler-raise"``.
    kind: str


@dataclass(frozen=True)
class BorrowedRelease:
    """A ``release()`` on a caller-owned (or unguarded maybe-owned)
    resource."""

    acquisition: Acquisition
    node: ast.Call
    guarded: bool


@dataclass
class OwnershipReport:
    """Everything the dataflow found in one function."""

    acquisitions: list[Acquisition]
    leaks: list[Leak]
    borrowed_releases: list[BorrowedRelease]


def analyze_function(
    func: AnyFunction,
    is_acquisition: Callable[[ast.Call], bool],
    release_attrs: frozenset[str] = frozenset({"release"}),
) -> OwnershipReport:
    """Run the ownership dataflow over one function."""
    analysis = _FunctionAnalysis(func, is_acquisition, release_attrs)
    return analysis.run()


# ----------------------------------------------------------------------
# Implementation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Event:
    """A release or escape of one tracked name at one statement."""

    name: str
    node: ast.AST
    kind: str  # "release" | "escape"
    guarded: bool = False


class _FunctionAnalysis:
    def __init__(
        self,
        func: AnyFunction,
        is_acquisition: Callable[[ast.Call], bool],
        release_attrs: frozenset[str],
    ) -> None:
        self.func = func
        self.is_acquisition = is_acquisition
        self.release_attrs = release_attrs
        self.params = {
            a.arg
            for a in (
                func.args.posonlyargs + func.args.args + func.args.kwonlyargs
            )
        } - {"self", "cls"}
        self.parents = _parent_map(func)
        self.acquisitions: dict[str, Acquisition] = {}
        self.events: list[_Event] = []
        self.borrowed_releases: list[BorrowedRelease] = []

    def run(self) -> OwnershipReport:
        self._collect_acquisitions()
        self._collect_events()
        leaks = list(self._find_leaks()) if self.acquisitions else []
        return OwnershipReport(
            acquisitions=list(self.acquisitions.values()),
            leaks=leaks,
            borrowed_releases=self.borrowed_releases,
        )

    # -- acquisition classification -------------------------------------

    def _collect_acquisitions(self) -> None:
        for node in _own_statements(self.func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                # ``self.scope = backend.subscope(...)`` stores the
                # resource on an object at birth — ownership lives with
                # the object, not this function's exit paths.
                continue
            state = self._classify(node.value)
            if state is None:
                # Rebinding a tracked name to something unrelated ends
                # tracking conservatively (``x = None`` reset idiom).
                continue
            self.acquisitions[target.id] = Acquisition(
                name=target.id, node=node, state=state
            )

    def _classify(self, value: ast.expr) -> Ownership | None:
        if isinstance(value, ast.Call) and self.is_acquisition(value):
            return Ownership.OWNED
        if isinstance(value, ast.Name) and value.id in self.params:
            # A bare alias of a parameter is only interesting once it is
            # released; track it as BORROWED so that release is flagged.
            return Ownership.BORROWED
        if isinstance(value, ast.IfExp):
            return self._mixed(value.body, value.orelse)
        if isinstance(value, ast.BoolOp) and len(value.values) == 2:
            return self._mixed(value.values[0], value.values[1])
        return None

    def _mixed(self, left: ast.expr, right: ast.expr) -> Ownership | None:
        def kind(node: ast.expr) -> str:
            if isinstance(node, ast.Call) and self.is_acquisition(node):
                return "acquired"
            if isinstance(node, ast.Name) and node.id in self.params:
                return "param"
            if isinstance(node, ast.Constant) and node.value is None:
                return "none"
            return "other"

        kinds = {kind(left), kind(right)}
        if kinds == {"acquired", "param"}:
            return Ownership.MAYBE
        if "acquired" in kinds:
            return Ownership.OWNED
        if "param" in kinds:
            return Ownership.BORROWED
        return None

    # -- event collection -----------------------------------------------

    def _collect_events(self) -> None:
        names = set(self.acquisitions)
        for node in _own_statements(self.func):
            release = self._release_of(node, names)
            if release is not None:
                name, call = release
                guarded = self._is_guarded(call)
                self.events.append(_Event(name, node, "release", guarded))
                acq = self.acquisitions[name]
                if acq.state is not Ownership.OWNED and not guarded:
                    # A guard (``if owns_root:`` / ``if x is not None:``)
                    # is how code records which arm of a conditional
                    # acquisition it took — unguarded release of a
                    # maybe/borrowed binding is the cross-release bug.
                    self.borrowed_releases.append(
                        BorrowedRelease(acq, call, guarded)
                    )
                continue
            for name in self._escapes_of(node, names):
                self.events.append(_Event(name, node, "escape"))
        # Releasing a *parameter* directly (never locally rebound) is the
        # clearest form of the caller-owned violation.
        for node in _own_statements(self.func):
            if isinstance(node, ast.Call):
                name = _released_name(node, self.release_attrs)
                if name in self.params and name not in self.acquisitions:
                    if self._is_guarded(node):
                        continue
                    acq = Acquisition(
                        name=str(name),
                        node=self.func,
                        state=Ownership.BORROWED,
                    )
                    self.borrowed_releases.append(
                        BorrowedRelease(acq, node, guarded=False)
                    )

    def _release_of(
        self, node: ast.AST, names: set[str]
    ) -> tuple[str, ast.Call] | None:
        if isinstance(node, ast.Call):
            name = _released_name(node, self.release_attrs)
            if name is not None and name in names:
                return name, node
        return None

    def _escapes_of(self, node: ast.AST, names: set[str]) -> Iterator[str]:
        if isinstance(node, ast.Return) and node.value is not None:
            yield from _names_in(node.value, names)
        elif isinstance(node, ast.Assign):
            stored = any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            )
            if stored:
                yield from _names_in(node.value, names)
        elif isinstance(node, ast.Call):
            if _released_name(node, self.release_attrs) is not None:
                return
            for arg in list(node.args) + [k.value for k in node.keywords]:
                yield from _names_in(arg, names)

    def _is_guarded(self, call: ast.Call) -> bool:
        """Whether a release sits under an ownership-flag conditional.

        Accepted guards: ``if flag:`` / ``if not flag:`` on a plain
        local name, and identity tests (``if x is not None:``) — the two
        idioms the fixed PR 9 code uses (``if owns_root:`` /
        ``if build_backend is not None:``).
        """
        current: ast.AST | None = call
        while current is not None and current is not self.func:
            parent = self.parents.get(current)
            if isinstance(parent, ast.If) and current in parent.body:
                test = parent.test
                if isinstance(test, ast.Name):
                    return True
                if isinstance(test, ast.UnaryOp) and isinstance(
                    test.operand, ast.Name
                ):
                    return True
                if isinstance(test, ast.Compare) and isinstance(
                    test.left, ast.Name
                ):
                    return True
            current = parent
        return False

    # -- exit-path analysis ---------------------------------------------

    def _find_leaks(self) -> Iterator[Leak]:
        for exit_node, kind in self._exits():
            in_handler = _enclosing_handler(exit_node, self.parents)
            for acq in self.acquisitions.values():
                if acq.state is Ownership.BORROWED:
                    continue  # the caller's problem, not a leak here
                if kind != "end" and not _precedes(acq.node, exit_node):
                    # A raise/return textually before the acquisition
                    # cannot leak it; the fall-through exit (anchored at
                    # the def line) always can.
                    continue
                if self._satisfied(acq, exit_node, kind, in_handler):
                    continue
                yield Leak(acquisition=acq, exit_node=exit_node, kind=kind)

    def _exits(self) -> Iterator[tuple[ast.AST, str]]:
        for node in _own_statements(self.func):
            if isinstance(node, ast.Return):
                yield node, "return"
            elif isinstance(node, ast.Raise):
                handler = _enclosing_handler(node, self.parents)
                yield node, ("handler-raise" if handler else "raise")
        if self._can_fall_off_end():
            yield self.func, "end"

    def _can_fall_off_end(self) -> bool:
        return not any(
            isinstance(stmt, (ast.Return, ast.Raise))
            for stmt in _unconditional(self.func.body)
        )

    def _satisfied(
        self,
        acq: Acquisition,
        exit_node: ast.AST,
        kind: str,
        handler: ast.ExceptHandler | None,
    ) -> bool:
        events = [e for e in self.events if e.name == acq.name]
        if kind == "return":
            if isinstance(exit_node, ast.Return) and exit_node.value is not None:
                if any(True for _ in _names_in(exit_node.value, {acq.name})):
                    return True
            return any(
                _dominates(e.node, exit_node, self.func, self.parents)
                for e in events
            )
        if kind == "end":
            return bool(events)
        if kind == "raise":
            return any(
                _dominates(e.node, exit_node, self.func, self.parents)
                for e in events
            )
        # handler-raise: only events inside this handler chain (its body
        # before the raise, or the try's finally) or dominating the try
        # statement itself are trustworthy.
        assert handler is not None
        try_stmt = self.parents.get(handler)
        for event in events:
            if _within(event.node, handler) and _precedes(
                event.node, exit_node
            ):
                return True
            if isinstance(try_stmt, ast.Try):
                if any(_within(event.node, s) for s in try_stmt.finalbody):
                    return True
                if _dominates(event.node, try_stmt, self.func, self.parents):
                    return True
        return False


# ----------------------------------------------------------------------
# AST plumbing
# ----------------------------------------------------------------------


def _own_statements(func: AnyFunction) -> Iterator[ast.AST]:
    """Walk the function body, skipping nested function/lambda subtrees.

    The nested def/lambda node itself is yielded (it is a statement of
    this function) but its body is not entered: a ``return`` inside a
    closure is not an exit of the enclosing function.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _parent_map(func: AnyFunction) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _released_name(call: ast.Call, release_attrs: frozenset[str]) -> str | None:
    """``x`` for a call ``x.release()``-shaped call, else ``None``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in release_attrs
        and isinstance(func.value, ast.Name)
    ):
        return func.value.id
    return None


def _names_in(node: ast.expr, names: set[str]) -> Iterator[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in names:
            if isinstance(child.ctx, ast.Load):
                yield child.id


def _within(node: ast.AST, container: ast.AST) -> bool:
    return node is container or any(node is c for c in ast.walk(container))


def _precedes(before: ast.AST, after: ast.AST) -> bool:
    before_line = getattr(before, "lineno", 0)
    after_line = getattr(after, "lineno", 1 << 30)
    return bool(before_line <= after_line)


def _enclosing_handler(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.ExceptHandler | None:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, ast.ExceptHandler):
            return current
        current = parents.get(current)
    return None


def _dominates(
    event_node: ast.AST,
    exit_node: ast.AST,
    func: AnyFunction,
    parents: dict[ast.AST, ast.AST],
) -> bool:
    """Whether ``event_node`` sits in a statement textually dominating
    ``exit_node``: a preceding sibling in some enclosing block (scanned
    into compound statements optimistically), walking up to ``func``."""
    current: ast.AST = exit_node
    while current is not func:
        parent = parents.get(current)
        if parent is None:
            break
        for _, value in ast.iter_fields(parent):
            if not isinstance(value, list) or current not in value:
                continue
            index = value.index(current)
            for stmt in value[:index]:
                if _within(event_node, stmt):
                    return True
        current = parent
    return False


def _unconditional(body: list[ast.stmt]) -> list[ast.stmt]:
    """Statements that always execute (``try``/``with`` expanded)."""
    out: list[ast.stmt] = []
    for stmt in body:
        out.append(stmt)
        if isinstance(stmt, ast.Try):
            out.extend(_unconditional(stmt.body))
            out.extend(_unconditional(stmt.finalbody))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            out.extend(_unconditional(stmt.body))
    return out
