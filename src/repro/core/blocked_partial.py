"""Blocked prefix sums over a dimension subset (§9's combined design).

Section 9's example composes both space/time knobs at once: *"we may
first decide that all the queries on dimension d3 do not involve ranges
and hence even for cuboids that include dimension d3, the prefix sum
would only be computed on other dimensions.  Next, we may decide to
compute a prefix sum on ⟨d1, d2, d3⟩ with a block size of 10..."* — a
prefix structure that is **partial** (accumulated along a chosen subset
``X'``) *and* **blocked** (block size ``b`` along those dimensions).

:class:`BlockedPartialPrefixSumCube` implements that point in the design
space.  Along the chosen dimensions the §4 machinery applies unchanged —
block contraction, the ``3^{d'}`` decomposition, the superblock /
complement choice per boundary region; the passive dimensions stay raw
everywhere, so every access becomes a *slab* over the query's passive
extent and costs its passive volume.

Degenerate corners: all dimensions chosen reproduces
:class:`~repro.core.blocked.BlockedPrefixSumCube`; ``b = 1`` approaches
:class:`~repro.core.partial_prefix.PartialPrefixSumCube`; both at once is
the basic §3 structure.
"""

from __future__ import annotations

import math
from itertools import product
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util import Box, box_difference, check_query_box
from repro.core.operators import SUM, InvertibleOperator
from repro.core.prefix_sum import (
    DENSE_FUZZ_DTYPES,
    DENSE_FUZZ_OPERATORS,
    accumulate_axis_inplace,
    accumulated_dtype,
)
from repro.index.backend import ArrayBackend, resolve_backend
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter

if TYPE_CHECKING:
    from repro.core.batch_update import PointUpdate


def _sample_blocked_partial_params(
    rng: np.random.Generator, shape: tuple[int, ...]
) -> dict[str, Any]:
    """Draw a prefix-dimension subset plus a blocking factor."""
    ndim = len(shape)
    mask = rng.integers(0, 2, size=ndim)
    return {
        "prefix_dims": tuple(int(j) for j in np.nonzero(mask)[0]),
        "block_size": int(rng.integers(1, 6)),
    }


@register_index(
    "blocked_partial_prefix_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(
        dtypes=DENSE_FUZZ_DTYPES,
        operators=DENSE_FUZZ_OPERATORS,
        sample_params=_sample_blocked_partial_params,
    ),
)
class BlockedPartialPrefixSumCube(RangeSumIndexMixin):
    """Prefix sums blocked with factor ``b`` along a subset ``X'``.

    ``sum_many`` routes through the execution-kernel layer: under a
    kernel with ``serial_boundaries`` (the ``numpy`` oracle) it falls
    back to the protocol mixin's scalar loop — the historical behaviour,
    query by query — while the vectorizing backends answer the whole
    batch through :func:`repro.kernels.blocked_sum_many_vectorized`,
    reducing every boundary region of the batch in one
    ``np.add.reduceat``-style pass.

    Args:
        cube: The raw data cube ``A`` (retained for boundary scans).
        prefix_dims: The chosen dimensions ``X'``.
        block_size: Blocking factor ``b >= 1`` along the chosen dims.
        operator: Invertible aggregation operator; default SUM.
        backend: Array backend for the retained cube and the blocked
            partial prefix array; pass a
            :class:`~repro.index.MemmapBackend` to build out-of-core.
    """

    def __init__(
        self,
        cube: np.ndarray,
        prefix_dims: Sequence[int],
        block_size: int,
        operator: InvertibleOperator = SUM,
        backend: ArrayBackend | None = None,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        cube = np.asarray(cube)
        self.operator = operator
        self.block_size = int(block_size)
        self.backend = resolve_backend(backend)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        chosen = sorted(set(int(j) for j in prefix_dims))
        if chosen and not 0 <= chosen[0] <= chosen[-1] < cube.ndim:
            raise ValueError(
                f"prefix dims {prefix_dims} out of range for a "
                f"{cube.ndim}-d cube"
            )
        self.prefix_dims = tuple(chosen)
        self.passive_dims = tuple(
            j for j in range(cube.ndim) if j not in set(chosen)
        )
        self.source = self.backend.materialize("source", cube)
        contracted = self.source
        # Contract in the operator's accumulation dtype: a single block
        # aggregate can already overflow a small source dtype.
        target = operator.accumulation_dtype(cube.dtype)
        for axis in self.prefix_dims:
            edges = np.arange(0, contracted.shape[axis], self.block_size)
            contracted = operator.apply.reduceat(
                contracted, edges, axis=axis, dtype=target
            )
        dtype = (
            accumulated_dtype(operator, contracted.dtype)
            if self.prefix_dims
            else contracted.dtype
        )
        prefix = self.backend.empty(
            "blocked_partial_prefix", contracted.shape, dtype
        )
        prefix[...] = contracted
        for axis in self.prefix_dims:
            accumulate_axis_inplace(prefix, operator, axis)
        self.blocked_prefix = prefix

    @property
    def storage_cells(self) -> int:
        """Cells of the auxiliary array: ``N / b^{d'}``."""
        return int(np.prod(self.blocked_prefix.shape))

    def memory_cells(self) -> int:
        """Protocol spelling of :attr:`storage_cells`."""
        return int(self.storage_cells)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters (reported and persisted)."""
        return {
            "prefix_dims": self.prefix_dims,
            "block_size": self.block_size,
            "operator": self.operator.name,
        }

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalars for generic persistence."""
        return {
            "operator": self.operator.name,
            "block_size": self.block_size,
            "prefix_dims": np.asarray(self.prefix_dims, dtype=np.int64),
            "source": self.source,
            "blocked_prefix": self.blocked_prefix,
        }

    @classmethod
    def from_state(
        cls, state: dict[str, Any], backend: ArrayBackend | None = None
    ) -> BlockedPartialPrefixSumCube:
        """Rebuild from :meth:`state_dict` without recontracting."""
        from repro.core.operators import get_operator

        backend = resolve_backend(backend)
        structure = cls.__new__(cls)
        structure.operator = get_operator(str(state["operator"]))
        structure.block_size = int(state["block_size"])
        structure.backend = backend
        structure.source = backend.materialize("source", state["source"])
        structure.blocked_prefix = backend.materialize(
            "blocked_partial_prefix", state["blocked_prefix"]
        )
        structure.shape = tuple(int(n) for n in structure.source.shape)
        structure.ndim = structure.source.ndim
        structure.prefix_dims = tuple(
            int(j) for j in np.asarray(state["prefix_dims"]).ravel()
        )
        structure.passive_dims = tuple(
            j
            for j in range(structure.ndim)
            if j not in set(structure.prefix_dims)
        )
        return structure

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Evaluate ``Sum(box)`` via the §4 decomposition on ``X'``.

        An empty ``box`` yields the operator identity.
        """
        if self._check_box(box):
            return self.operator.identity
        return self.range_sum_unchecked(box, counter)

    def range_sum_unchecked(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """:meth:`range_sum` minus validation (batch default hook)."""
        op = self.operator
        passive_slices = tuple(
            slice(box.lo[j], box.hi[j] + 1) for j in self.passive_dims
        )
        passive_cells = 1
        for j in self.passive_dims:
            passive_cells *= box.hi[j] - box.lo[j] + 1
        if not self.prefix_dims:
            counter.count_cube(passive_cells)
            return op.reduce_box(self.source[passive_slices])
        plans = [
            self._plan_dimension(box.lo[j], box.hi[j], self.shape[j])
            for j in self.prefix_dims
        ]
        result = op.identity
        for combo in product(*plans):
            region = Box(
                tuple(piece[0] for piece in combo),
                tuple(piece[1] for piece in combo),
            )
            if region.is_empty:
                continue
            if all(piece[4] for piece in combo):
                value = self._aligned_sum(
                    region, passive_slices, passive_cells, counter
                )
            else:
                superblock = Box(
                    tuple(piece[2] for piece in combo),
                    tuple(piece[3] for piece in combo),
                )
                value = self._boundary_sum(
                    region,
                    superblock,
                    passive_slices,
                    passive_cells,
                    counter,
                )
            result = op.apply(result, value)
        return result

    def sum_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.range_sum(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def sum_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Answer ``K`` range-sums, vectorizing per the selected kernel.

        Backends with ``serial_boundaries`` (the ``numpy`` oracle)
        delegate to the protocol mixin's scalar loop — the historical
        code path, bit for bit — while the others reduce every boundary
        region of the batch in one pass through
        :func:`repro.kernels.blocked_sum_many_vectorized`.

        Args:
            lows: ``(K, d)`` inclusive lower bounds (array-like, ints).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Standard access counter (same charges as scalar).

        Returns:
            A ``(K,)`` array of aggregates; empty rows (``hi < lo``)
            yield the operator identity.
        """
        from repro.kernels import blocked_sum_many_vectorized, resolve_kernel
        from repro.query.batch import (
            normalize_query_arrays,
            solve_with_identity,
        )

        kern = resolve_kernel(override=self.kernel)
        if kern.serial_boundaries:
            return super().sum_many(lows, highs, counter)
        lo, hi = normalize_query_arrays(
            lows, highs, self.shape, allow_empty=True
        )
        return solve_with_identity(
            lo,
            hi,
            self.operator.identity,
            lambda l, h: blocked_sum_many_vectorized(
                self, l, h, kern, counter
            ),
        )

    def apply_updates(self, updates: Sequence[PointUpdate]) -> int:
        """Batch-update the structure (§5.2 along ``X'``, raw elsewhere).

        Updates are applied point-wise to the raw cube, contracted to
        block coordinates along the chosen dimensions, grouped by their
        passive coordinates, and each group runs the §5 partition in the
        chosen-block subspace.

        Returns:
            The number of delta-uniform regions written into ``P``.
        """
        from repro.core.batch_update import PointUpdate, partition_updates

        op = self.operator
        groups: dict[
            tuple[int, ...], dict[tuple[int, ...], object]
        ] = {}
        for update in updates:
            if len(update.index) != self.ndim:
                raise ValueError(
                    f"update index {update.index} has wrong dimensionality"
                )
            self.source[update.index] = op.apply(
                self.source[update.index], update.delta
            )
            passive = tuple(
                update.index[j] for j in self.passive_dims
            )
            block = tuple(
                update.index[j] // self.block_size
                for j in self.prefix_dims
            )
            bucket = groups.setdefault(passive, {})
            if block in bucket:
                bucket[block] = op.apply(bucket[block], update.delta)
            else:
                bucket[block] = update.delta
        if not self.prefix_dims:
            # No accumulation anywhere: P mirrors A cell for cell.
            for passive, bucket in groups.items():
                for _, delta in bucket.items():
                    index = self._index_for((), passive)
                    self.blocked_prefix[index] = op.apply(
                        self.blocked_prefix[index], delta
                    )
            self.backend.flush()
            return sum(len(bucket) for bucket in groups.values())
        block_shape = tuple(
            self.blocked_prefix.shape[j] for j in self.prefix_dims
        )
        total_regions = 0
        for passive, bucket in groups.items():
            regions = partition_updates(
                [
                    PointUpdate(block, delta)
                    for block, delta in bucket.items()
                ],
                block_shape,
                op,
            )
            total_regions += len(regions)
            for box, delta in regions:
                chosen_slices = tuple(
                    slice(l, h + 1) for l, h in zip(box.lo, box.hi)
                )
                index = self._index_for(chosen_slices, passive)
                view = self.blocked_prefix[index]
                view[...] = op.apply(view, delta)
        self.backend.flush()
        return total_regions

    # ------------------------------------------------------------------
    # Internals (chosen-dimension geometry mirrors repro.core.blocked)
    # ------------------------------------------------------------------

    def _plan_dimension(
        self, lo: int, hi: int, size: int
    ) -> tuple[tuple[int, int, int, int, bool], ...]:
        b = self.block_size
        low_aligned = b * (lo // b)
        low_up = b * math.ceil(lo / b)
        high_down = b * (hi // b)
        high_up = min(b * math.ceil(hi / b), size)
        if high_up == high_down:
            high_up = min(high_down + b, size)
        if low_up < high_down:
            return (
                (lo, low_up - 1, low_aligned, low_up - 1, False),
                (low_up, high_down - 1, low_up, high_down - 1, True),
                (high_down, hi, high_down, high_up - 1, False),
            )
        return ((lo, hi, low_aligned, high_up - 1, False),)

    def _index_for(
        self,
        chosen_values: Sequence[object],
        passive_slices: Sequence[slice],
    ) -> tuple[object, ...]:
        """Assemble a full-array index from chosen coords + passive slabs."""
        index: list[object] = [None] * self.ndim
        for j, value in zip(self.prefix_dims, chosen_values):
            index[j] = value
        for j, slab in zip(self.passive_dims, passive_slices):
            index[j] = slab
        return tuple(index)

    def _aligned_sum(
        self,
        region: Box,
        passive_slices: tuple[slice, ...],
        passive_cells: int,
        counter: AccessCounter,
    ) -> object:
        """Block-aligned region from ``P``: inclusion–exclusion slabs."""
        b = self.block_size
        block_lo = tuple(l // b for l in region.lo)
        block_hi = tuple(h // b for h in region.hi)
        op = self.operator
        positive = op.identity
        negative = op.identity
        for corner_choice in product(
            (False, True), repeat=len(self.prefix_dims)
        ):
            chosen = tuple(
                block_hi[k] if take_hi else block_lo[k] - 1
                for k, take_hi in enumerate(corner_choice)
            )
            if any(x < 0 for x in chosen):
                continue
            counter.count_prefix(passive_cells)
            slab = self.blocked_prefix[
                self._index_for(chosen, passive_slices)
            ]
            value = op.reduce_box(np.asarray(slab))
            if corner_choice.count(False) % 2 == 0:
                positive = op.apply(positive, value)
            else:
                negative = op.apply(negative, value)
        return op.invert(positive, negative)

    def _scan(
        self,
        region: Box,
        passive_slices: tuple[slice, ...],
        passive_cells: int,
        counter: AccessCounter,
    ) -> object:
        """Raw-cube slab scan of a chosen-dimension box."""
        counter.count_cube(region.volume * passive_cells)
        chosen_slices = tuple(
            slice(l, h + 1) for l, h in zip(region.lo, region.hi)
        )
        return self.operator.reduce_box(
            self.source[self._index_for(chosen_slices, passive_slices)]
        )

    def _boundary_sum(
        self,
        region: Box,
        superblock: Box,
        passive_slices: tuple[slice, ...],
        passive_cells: int,
        counter: AccessCounter,
    ) -> object:
        """The §4.2 method choice, per boundary region."""
        op = self.operator
        direct_cost = region.volume
        complement_cost = (
            superblock.volume - region.volume
            + (1 << len(self.prefix_dims))
            - 1
        )
        if direct_cost <= complement_cost:
            return self._scan(region, passive_slices, passive_cells, counter)
        total = self._aligned_sum(
            superblock, passive_slices, passive_cells, counter
        )
        for piece in box_difference(superblock, region):
            total = op.invert(
                total,
                self._scan(piece, passive_slices, passive_cells, counter),
            )
        return total

    def _check_box(self, box: Box) -> bool:
        """Validate ``box``; True means empty (answer is the identity)."""
        return check_query_box(box, self.shape)
