"""Tree-hierarchy range-sum — the comparator structure of paper §8.

Section 8 asks whether the balanced tree used for range-max is also a good
range-sum structure.  The answer is no: without an analogue of branch and
bound, a range-sum must traverse *every* boundary node down to the leaves,
paying ``F(b)·Σ_{k=0}^{t−1} S / b^{k(d−1)}`` element accesses versus the
prefix-sum method's ``2^d + S·F(b)`` — the gap plotted in Figure 11.

This module implements the structure faithfully so the comparison can be
measured, not just computed from the cost model:

* nodes store the sum of the region they cover;
* a query starts at the lowest-level covering node and recurses into
  boundary children (internal children resolve in one access, external
  children are skipped);
* subtraction **is** used, as §8's analysis grants for fairness: when a
  region covers more than half of a node's region, the node's stored sum
  minus the complement is evaluated instead, which is why ``F(b) ≈ b/4``
  rather than ``b/2`` for both contenders.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro._util import Box, box_difference, full_box
from repro.core.operators import SUM, InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter


class TreeSumHierarchy:
    """A balanced ``b^d``-ary tree of region sums (paper §8).

    Args:
        cube: The raw data cube ``A`` (retained; leaf reads come from it).
        fanout: Per-dimension fanout ``b >= 2``.
        operator: Invertible aggregation operator; default SUM.  (The tree
            itself never uses the inverse except for the fairness
            subtraction; a non-invertible operator could drop that.)
    """

    def __init__(
        self,
        cube: np.ndarray,
        fanout: int,
        operator: InvertibleOperator = SUM,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        self.fanout = int(fanout)
        self.operator = operator
        self.source = np.array(cube, copy=True)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.levels: list[np.ndarray | None] = [None]
        current = self.source
        # Node sums run in the operator's accumulation dtype: a single
        # node aggregates up to b^d cells, which already wraps an int8
        # source (the same policy as the prefix sweeps).
        target = operator.accumulation_dtype(cube.dtype)
        while any(n > 1 for n in current.shape):
            contracted = current
            for axis in range(contracted.ndim):
                edges = np.arange(0, contracted.shape[axis], self.fanout)
                contracted = operator.apply.reduceat(
                    contracted, edges, axis=axis, dtype=target
                )
            self.levels.append(contracted)
            current = contracted
        self.height = len(self.levels) - 1

    @property
    def node_count(self) -> int:
        """Total non-leaf nodes stored (comparable to a blocked P of the
        same ``b``, plus the higher levels — the tree's space is a factor
        ``b^d/(b^d − 1)`` above the single blocked array)."""
        return sum(lv.size for lv in self.levels[1:] if lv is not None)

    def node_region(self, level: int, node: tuple[int, ...]) -> Box:
        """The leaf region covered by a node."""
        span = self.fanout**level
        lo = tuple(c * span for c in node)
        hi = tuple(
            min((c + 1) * span, n) - 1 for c, n in zip(node, self.shape)
        )
        return Box(lo, hi)

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Evaluate ``Sum(box)`` by tree traversal."""
        self._check_box(box)
        return self.range_sum_unchecked(box, counter)

    def range_sum_unchecked(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """:meth:`range_sum` minus validation (see the protocol mixin).

        The batch default validates all ``K`` queries in one vectorized
        pass and then calls this hook per row, so the per-query bounds
        check stops dominating small-``K`` profiles.
        """
        level, node = self._lowest_covering_node(box)
        return self._sum_region(level, node, box, counter)

    def sum_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.range_sum(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def total(self, counter: AccessCounter = NULL_COUNTER) -> object:
        """Aggregate of the entire cube (one root access)."""
        return self.range_sum(full_box(self.shape), counter)

    def _lowest_covering_node(self, box: Box) -> tuple[int, tuple[int, ...]]:
        level = 0
        span = 1
        while level < self.height:
            if all(
                lo // span == hi // span for lo, hi in zip(box.lo, box.hi)
            ):
                break
            level += 1
            span *= self.fanout
        return level, tuple(lo // span for lo in box.lo)

    def _sum_region(
        self,
        level: int,
        node: tuple[int, ...],
        region: Box,
        counter: AccessCounter,
    ) -> object:
        """Sum of ``region`` (⊆ the node's cover) below ``node``."""
        op = self.operator
        cover = self.node_region(level, node)
        if level == 0:
            counter.count_cube(1)
            return self.source[node]
        if cover == region:
            counter.count_tree(1)
            return self.levels[level][node]
        if 2 * region.volume > cover.volume:
            # Fairness subtraction (§8): resolve via the complement.
            counter.count_tree(1)
            total = self.levels[level][node]
            for piece in box_difference(cover, region):
                total = op.invert(
                    total, self._descend(level, node, piece, counter)
                )
            return total
        return self._descend(level, node, region, counter)

    def _descend(
        self,
        level: int,
        node: tuple[int, ...],
        region: Box,
        counter: AccessCounter,
    ) -> object:
        """Recurse into the children overlapping ``region``."""
        op = self.operator
        total = op.identity
        child_level = level - 1
        child_shape = (
            self.shape if child_level == 0 else self.levels[child_level].shape
        )
        if child_level == 0:
            # Children are raw cells: scan the overlap directly.
            counter.count_cube(region.volume)
            return op.reduce_box(self.source[region.slices()])
        for child in self._iter_children(node, child_shape):
            cover = self.node_region(child_level, child)
            overlap = cover.intersect(region)
            if overlap.is_empty:
                continue
            if overlap == cover:
                counter.count_tree(1)
                total = op.apply(total, self.levels[child_level][child])
            else:
                total = op.apply(
                    total,
                    self._sum_region(child_level, child, overlap, counter),
                )
        return total

    def _iter_children(
        self, node: tuple[int, ...], child_shape: tuple[int, ...]
    ) -> Iterator[tuple[int, ...]]:
        from itertools import product

        ranges = [
            range(c * self.fanout, min((c + 1) * self.fanout, n))
            for c, n in zip(node, child_shape)
        ]
        return product(*ranges)

    def _check_box(self, box: Box) -> None:
        if box.ndim != self.ndim:
            raise ValueError(
                f"query has {box.ndim} dims, cube has {self.ndim}"
            )
        if box.is_empty:
            raise ValueError(f"empty query region {box}")
        for j, (lo, hi, n) in enumerate(zip(box.lo, box.hi, self.shape)):
            if not 0 <= lo <= hi < n:
                raise ValueError(
                    f"range {lo}:{hi} outside dimension {j} of size {n}"
                )
