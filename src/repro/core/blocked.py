"""The blocked prefix-sum range-sum method (paper §4).

Instead of one prefix sum per cell, keep prefix sums only at block
boundaries: ``P[i1..id]`` is stored only when every index satisfies
``(i_j + 1) mod b = 0`` or ``i_j = n_j − 1``.  Packed densely, the
auxiliary array has ``≈ N / b^d`` cells, but the raw cube ``A`` must be
retained.

A query ``Sum(l1:h1, ..., ld:hd)`` is answered by decomposing its region
into ``3^d`` disjoint sub-regions (Figure 5):

* per dimension, the three adjoining ranges
  ``l_j : l'_j − 1``, ``l'_j : h'_j − 1``, ``h'_j : h_j`` where
  ``l'_j = b⌈l_j/b⌉`` and ``h'_j = b⌊h_j/b⌋`` (case 1, ``l'_j < h'_j``),
  or the single range ``l_j : h_j`` when the query does not span a full
  block in that dimension (case 2);
* the all-middle combination is the block-aligned **internal region**,
  answered from ``P`` alone in ``≤ 2^d`` reads;
* every other combination is a **boundary region**, answered either by
  scanning its own cells of ``A``, or by the *superblock* trick — the
  block-aligned superblock's sum from ``P`` minus a scan of the
  complement cells — whichever touches fewer elements.  The choice is
  made per boundary region independently (Figure 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.batch_update import PointUpdate

import numpy as np

from repro._util import Box, box_difference, check_query_box, full_box
from repro.core.operators import SUM, InvertibleOperator
from repro.core.prefix_sum import (
    DENSE_FUZZ_DTYPES,
    DENSE_FUZZ_OPERATORS,
    compute_prefix_array,
)
from repro.index.backend import ArrayBackend, resolve_backend
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter


def block_contract(
    cube: np.ndarray, block_size: int, operator: InvertibleOperator = SUM
) -> np.ndarray:
    """Aggregate each ``b × ... × b`` block of the cube to one cell (§4.3).

    This is the first phase of the two-phase blocked construction: the cube
    is contracted by a factor of ``b`` in every dimension (the final block
    per dimension may be partial).
    """
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    contracted = cube
    # A block aggregate can already outgrow a small source dtype, so the
    # contraction runs in the operator's accumulation dtype (same policy
    # as the prefix sweeps themselves).
    target = operator.accumulation_dtype(cube.dtype)
    for axis in range(cube.ndim):
        edges = np.arange(0, contracted.shape[axis], block_size)
        if isinstance(operator.apply, np.ufunc):
            contracted = operator.apply.reduceat(
                contracted, edges, axis=axis, dtype=target
            )
        else:  # pragma: no cover - all shipped operators are ufuncs
            raise TypeError("block contraction requires a ufunc operator")
    return contracted


@dataclass(frozen=True)
class _DimensionPlan:
    """Per-dimension decomposition of one query range (paper Figure 4).

    Each entry of ``pieces`` is ``(lo, hi, super_lo, super_hi, internal)``:
    the sub-range, its block-aligned superblock extent, and whether the
    sub-range belongs to the internal (block-aligned) band.
    """

    pieces: tuple[tuple[int, int, int, int, bool], ...]


def _sample_blocked_params(rng: np.random.Generator, shape: tuple[int, ...]) -> dict[str, Any]:
    """Draw a fuzzable blocking factor for a cube of ``shape``."""
    return {"block_size": int(rng.integers(1, 6))}


@register_index(
    "blocked_prefix_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(
        dtypes=DENSE_FUZZ_DTYPES,
        operators=DENSE_FUZZ_OPERATORS,
        sample_params=_sample_blocked_params,
    ),
)
class BlockedPrefixSumCube(RangeSumIndexMixin):
    """Range-sum index trading time for space via block-level prefix sums.

    Args:
        cube: The raw data cube ``A`` (retained — the blocked method needs
            it to resolve boundary regions).
        block_size: The blocking factor ``b >= 1``.  ``b = 1`` degenerates
            to the basic method of §3 (and is handled by the same code).
        operator: Invertible aggregation operator; default SUM.
        backend: Array backend for the retained cube and the blocked
            prefix array; pass a :class:`~repro.index.MemmapBackend` to
            build out-of-core.
    """

    def __init__(
        self,
        cube: np.ndarray,
        block_size: int,
        operator: InvertibleOperator = SUM,
        backend: ArrayBackend | None = None,
    ) -> None:
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        cube = np.asarray(cube)
        self.operator = operator
        self.block_size = int(block_size)
        self.backend = resolve_backend(backend)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.source = self.backend.materialize("source", cube)
        contracted = block_contract(self.source, self.block_size, operator)
        self.blocked_prefix = compute_prefix_array(
            contracted, operator, backend=self.backend, name="blocked_prefix"
        )
        self.block_shape = self.blocked_prefix.shape

    @property
    def size(self) -> int:
        """Total number of cells ``N`` of the raw cube."""
        return int(np.prod(self.shape))

    @property
    def storage_cells(self) -> int:
        """Cells of auxiliary storage (the packed blocked array, ~N/b^d)."""
        return int(np.prod(self.block_shape))

    def memory_cells(self) -> int:
        """Protocol spelling of :attr:`storage_cells`."""
        return int(self.storage_cells)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters (reported and persisted)."""
        return {
            "block_size": self.block_size,
            "operator": self.operator.name,
        }

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalars for generic persistence."""
        return {
            "operator": self.operator.name,
            "block_size": self.block_size,
            "source": self.source,
            "blocked_prefix": self.blocked_prefix,
        }

    @classmethod
    def from_state(
        cls, state: dict[str, Any], backend: ArrayBackend | None = None
    ) -> BlockedPrefixSumCube:
        """Rebuild from :meth:`state_dict` without recontracting."""
        from repro.core.operators import get_operator

        backend = resolve_backend(backend)
        structure = cls.__new__(cls)
        structure.operator = get_operator(str(state["operator"]))
        structure.block_size = int(state["block_size"])
        structure.backend = backend
        structure.source = backend.materialize("source", state["source"])
        structure.blocked_prefix = backend.materialize(
            "blocked_prefix", state["blocked_prefix"]
        )
        structure.shape = tuple(int(n) for n in structure.source.shape)
        structure.ndim = structure.source.ndim
        structure.block_shape = structure.blocked_prefix.shape
        return structure

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Evaluate ``Sum(box)`` with the 3^d decomposition of §4.2.

        An empty ``box`` yields the operator identity.
        """
        if self._check_box(box):
            return self.operator.identity
        plans = [
            self._plan_dimension(lo, hi, n)
            for lo, hi, n in zip(box.lo, box.hi, self.shape)
        ]
        op = self.operator
        result = op.identity
        for combo in product(*(plan.pieces for plan in plans)):
            region = Box(
                tuple(piece[0] for piece in combo),
                tuple(piece[1] for piece in combo),
            )
            if region.is_empty:
                continue
            if all(piece[4] for piece in combo):
                value = self._aligned_region_sum(region, counter)
            else:
                superblock = Box(
                    tuple(piece[2] for piece in combo),
                    tuple(piece[3] for piece in combo),
                )
                value = self._boundary_region_sum(region, superblock, counter)
            result = op.apply(result, value)
        return result

    def sum_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.range_sum(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def sum_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Answer ``K`` range-sums, vectorizing per the selected kernel.

        The block-aligned internal region of every query (the all-middle
        member of its ``3^d`` decomposition) is resolved for the whole
        batch with a single gather on the blocked prefix array.  What
        happens to the boundary regions depends on the resolved execution
        kernel: backends with ``serial_boundaries`` (the ``numpy``
        oracle) fall back to the scalar machinery query by query — the
        historical code path, bit for bit — while the others run the
        one-pass vectorized boundary machinery of
        :mod:`repro.kernels.boundary`.

        Args:
            lows: ``(K, d)`` inclusive lower bounds (array-like, ints).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Standard access counter (same charges as scalar).

        Returns:
            A ``(K,)`` array of aggregates; empty rows (``hi < lo``)
            yield the operator identity.
        """
        from repro.kernels import blocked_sum_many_vectorized, resolve_kernel
        from repro.query.batch import (
            blocked_sum_many,
            normalize_query_arrays,
            solve_with_identity,
        )

        kern = resolve_kernel(override=self.kernel)
        lo, hi = normalize_query_arrays(
            lows, highs, self.shape, allow_empty=True
        )
        if kern.serial_boundaries:
            return solve_with_identity(
                lo,
                hi,
                self.operator.identity,
                lambda l, h: blocked_sum_many(
                    self, l, h, counter, kernel=kern
                ),
            )
        return solve_with_identity(
            lo,
            hi,
            self.operator.identity,
            lambda l, h: blocked_sum_many_vectorized(
                self, l, h, kern, counter
            ),
        )

    def total(self, counter: AccessCounter = NULL_COUNTER) -> object:
        """Aggregate of the entire cube."""
        return self.range_sum(full_box(self.shape), counter)

    def decompose(self, box: Box) -> list[tuple[Box, Box, bool]]:
        """Expose the 3^d decomposition for inspection and benchmarks.

        Returns:
            ``(region, superblock, is_internal)`` triples covering ``box``
            disjointly, in the Cartesian-product order of Figure 5 (empty
            for an empty ``box``).
        """
        if self._check_box(box):
            return []
        plans = [
            self._plan_dimension(lo, hi, n)
            for lo, hi, n in zip(box.lo, box.hi, self.shape)
        ]
        out: list[tuple[Box, Box, bool]] = []
        for combo in product(*(plan.pieces for plan in plans)):
            region = Box(
                tuple(piece[0] for piece in combo),
                tuple(piece[1] for piece in combo),
            )
            if region.is_empty:
                continue
            superblock = Box(
                tuple(piece[2] for piece in combo),
                tuple(piece[3] for piece in combo),
            )
            out.append((region, superblock, all(p[4] for p in combo)))
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan_dimension(self, lo: int, hi: int, size: int) -> _DimensionPlan:
        """Split one dimension's range per Figure 4 / §4.2.

        Case 1 (``l' < h'``): three adjoining sub-ranges, the middle one
        aligned with the block structure.  Case 2: the range does not span
        a full block, so it stays whole with superblock ``l'' : h'' − 1``.
        """
        b = self.block_size
        low_aligned = b * (lo // b)  # l''
        low_up = b * math.ceil(lo / b)  # l'
        high_down = b * (hi // b)  # h'
        high_up = min(b * math.ceil(hi / b), size)  # h''
        if high_up == high_down:
            # hi itself is a multiple of b; the enclosing block ends one
            # block later (clamped to the cube edge).
            high_up = min(high_down + b, size)
        if low_up < high_down:
            pieces = (
                (lo, low_up - 1, low_aligned, low_up - 1, False),
                (low_up, high_down - 1, low_up, high_down - 1, True),
                (high_down, hi, high_down, high_up - 1, False),
            )
        else:
            pieces = ((lo, hi, low_aligned, high_up - 1, False),)
        return _DimensionPlan(pieces)

    def _aligned_region_sum(
        self, region: Box, counter: AccessCounter
    ) -> object:
        """Sum of a block-aligned region from the blocked ``P`` alone.

        ``region`` must start at a multiple of ``b`` and end at
        ``(multiple of b) − 1`` or the cube edge in every dimension; it
        then maps exactly onto a range of contracted blocks and Theorem 1
        applies to the contracted prefix array.
        """
        b = self.block_size
        block_lo = tuple(l // b for l in region.lo)
        block_hi = tuple(h // b for h in region.hi)
        op = self.operator
        positive = op.identity
        negative = op.identity
        for corner_choice in product((False, True), repeat=self.ndim):
            index = tuple(
                block_hi[j] if take_hi else block_lo[j] - 1
                for j, take_hi in enumerate(corner_choice)
            )
            if any(x < 0 for x in index):
                continue
            counter.count_prefix()
            value = self.blocked_prefix[index]
            if corner_choice.count(False) % 2 == 0:
                positive = op.apply(positive, value)
            else:
                negative = op.apply(negative, value)
        return op.invert(positive, negative)

    def _scan_box(self, box: Box, counter: AccessCounter) -> object:
        """Aggregate raw cube cells of ``box``, charging one read each."""
        counter.count_cube(box.volume)
        return self.operator.reduce_box(self.source[box.slices()])

    def _boundary_region_sum(
        self, region: Box, superblock: Box, counter: AccessCounter
    ) -> object:
        """Resolve one boundary region by the cheaper of the two methods.

        Method 1 scans the region's own ``volume`` cells of ``A``.
        Method 2 reads the superblock's sum from ``P`` (≤ 2^d reads,
        2^d − 1 steps) and scans the complement's cells.  Per §4.2 the
        algorithm picks method 1 iff
        ``volume(region) <= volume(complement) + 2^d − 1``.
        """
        direct_cost = region.volume
        complement_volume = superblock.volume - region.volume
        complement_cost = complement_volume + (1 << self.ndim) - 1
        if direct_cost <= complement_cost:
            return self._scan_box(region, counter)
        op = self.operator
        total = self._aligned_region_sum(superblock, counter)
        for piece in box_difference(superblock, region):
            total = op.invert(total, self._scan_box(piece, counter))
        return total

    def explain(self, box: Box) -> str:
        """A human-readable plan for ``Sum(box)`` (the 3^d decomposition).

        Lists every sub-region with the method the algorithm will choose
        and its estimated element accesses — useful when tuning block
        sizes interactively.
        """
        lines = [
            f"Sum({', '.join(f'{l}:{h}' for l, h in zip(box.lo, box.hi))})"
            f"  [volume {box.volume}, b = {self.block_size}]"
        ]
        total = 0
        for region, superblock, internal in self.decompose(box):
            if internal:
                cost = 1 << self.ndim
                lines.append(
                    f"  internal  {region}  -> prefix array "
                    f"(~{cost} reads)"
                )
            else:
                direct = region.volume
                complement = (
                    superblock.volume - region.volume
                    + (1 << self.ndim)
                    - 1
                )
                if direct <= complement:
                    cost = direct
                    lines.append(
                        f"  boundary  {region}  -> scan A "
                        f"({direct} cells)"
                    )
                else:
                    cost = complement + 1
                    lines.append(
                        f"  boundary  {region}  -> superblock "
                        f"{superblock} − complement "
                        f"({superblock.volume - region.volume} cells "
                        f"+ ~{1 << self.ndim} reads)"
                    )
            total += cost
        lines.append(
            f"  estimated total: ~{total} accesses "
            f"(naive scan: {box.volume})"
        )
        return "\n".join(lines)

    def apply_updates(self, updates: Sequence[PointUpdate]) -> int:
        """Apply a batch of point updates with the two-phase §5.2 scheme.

        Phase 1 contracts the updates block-wise; phase 2 runs the basic
        batch-update recursion on the blocked prefix array.  The raw cube
        is updated point-wise (it must stay exact for boundary scans).

        Returns:
            The number of delta-uniform regions written into the blocked
            prefix array.
        """
        from repro.core.batch_update import (
            apply_batch_to_prefix,
            contract_updates_to_blocks,
        )
        from repro.kernels import resolve_kernel
        from repro.kernels.segments import flatten_updates

        if len(updates):
            flat, deltas = flatten_updates(updates, self.shape)
            resolve_kernel(self.kernel).scatter(
                self.source.reshape(-1), flat, deltas, self.operator
            )
        contracted = contract_updates_to_blocks(
            updates, self.block_size, self.operator
        )
        regions = apply_batch_to_prefix(
            self.blocked_prefix, contracted, self.operator
        )
        self.backend.flush()
        return regions

    def _check_box(self, box: Box) -> bool:
        """Validate ``box``; True means empty (answer is the identity)."""
        return check_query_box(box, self.shape)
