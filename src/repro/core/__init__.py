"""Core algorithms of the paper: prefix sums, blocking, updates, max trees."""

from repro.core.batch_update import (
    PointUpdate,
    apply_batch_to_prefix,
    apply_updates_naive,
    combine_duplicate_updates,
    contract_updates_to_blocks,
    delta_for_assignment,
    partition_updates,
    theorem2_region_bound,
)
from repro.core.blocked import BlockedPrefixSumCube, block_contract
from repro.core.blocked_partial import BlockedPartialPrefixSumCube
from repro.core.bounds import (
    MaxBounds,
    ProgressiveBounds,
    progressive_bounds,
    progressive_max_bounds,
)
from repro.core.max_update import (
    MaxAssignment,
    MaxUpdateStats,
    apply_max_updates,
)
from repro.core.operators import (
    OPERATORS,
    PRODUCT,
    SUM,
    XOR,
    InvertibleOperator,
    get_operator,
)
from repro.core.partial_prefix import PartialPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube, compute_prefix_array
from repro.core.range_max import RangeMaxTree
from repro.core.tree_sum import TreeSumHierarchy

__all__ = [
    "BlockedPartialPrefixSumCube",
    "BlockedPrefixSumCube",
    "InvertibleOperator",
    "MaxAssignment",
    "MaxBounds",
    "MaxUpdateStats",
    "OPERATORS",
    "PRODUCT",
    "PartialPrefixSumCube",
    "PointUpdate",
    "PrefixSumCube",
    "ProgressiveBounds",
    "RangeMaxTree",
    "SUM",
    "TreeSumHierarchy",
    "XOR",
    "apply_batch_to_prefix",
    "apply_max_updates",
    "apply_updates_naive",
    "block_contract",
    "combine_duplicate_updates",
    "compute_prefix_array",
    "contract_updates_to_blocks",
    "delta_for_assignment",
    "get_operator",
    "partition_updates",
    "progressive_bounds",
    "progressive_max_bounds",
    "theorem2_region_bound",
]
