"""The basic prefix-sum range-sum method (paper §3).

Precompute ``P[x1..xd] = Sum(0:x1, ..., 0:xd)`` — a d-dimensional prefix-sum
array the same size as the cube — and answer any range-sum by combining at
most ``2^d`` cells of ``P`` with alternating signs (Theorem 1):

    Sum(l1:h1, ..., ld:hd) =
        Σ over corners x_j ∈ {l_j − 1, h_j} of (Π_j s(j)) · P[x1..xd]

where ``s(j) = +1`` when ``x_j = h_j`` and ``−1`` when ``x_j = l_j − 1``,
and ``P[..] = 0`` whenever any coordinate is ``−1``.

The construction (§3.3) runs d one-dimensional sweeps, one per dimension,
reusing a single output array — a direct map onto ``op.accumulate`` per
axis (``np.cumsum`` for SUM).

The structure generalizes to any invertible operator pair (§1); signs
become applications of ``⊕`` / ``⊖``.
"""

from __future__ import annotations

from itertools import product
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util import Box, check_query_box, full_box
from repro.core.operators import SUM, InvertibleOperator
from repro.index.backend import ArrayBackend, resolve_backend
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.batch_update import PointUpdate

#: Every cube dtype the dense prefix-sum family accepts — shared by the
#: fuzz profiles of all four §3/§4/§9.1 structures.
DENSE_FUZZ_DTYPES = (
    "bool",
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "float32",
    "float64",
)

#: Operators the dense family can be built with (the harness narrows by
#: dtype: ``xor`` needs integers, ``product`` a zero-free exact domain).
DENSE_FUZZ_OPERATORS = ("sum", "xor", "product")


def accumulated_dtype(
    operator: InvertibleOperator, dtype: np.dtype
) -> np.dtype:
    """The dtype prefix accumulation runs in for a ``dtype`` cube.

    Delegates to :meth:`InvertibleOperator.accumulation_dtype`, which
    probes the operator's own ``accumulate`` and then promotes widening
    operators to at least ``int64`` / ``uint64`` / ``float64`` — a
    prefix cell aggregates up to ``N`` source cells, so an ``int8`` or
    ``float32`` accumulator would silently wrap or round.  Backends must
    pre-allocate this dtype because the sweeps accumulate in place.
    """
    return operator.accumulation_dtype(dtype)


def accumulate_axis_inplace(
    prefix: np.ndarray, operator: InvertibleOperator, axis: int
) -> None:
    """One §3.3 sweep, writing through the array it reads.

    For ufunc operators (all shipped ones) this is a true in-place
    ``ufunc.accumulate`` — the out-of-core path streams each axis sweep
    through the memmap without materializing a second ``N``-cell array.
    """
    if isinstance(operator.apply, np.ufunc):
        operator.apply.accumulate(prefix, axis=axis, out=prefix)
    else:  # pragma: no cover - all shipped operators are ufuncs
        prefix[...] = operator.accumulate(prefix, axis)


def compute_prefix_array(
    cube: np.ndarray,
    operator: InvertibleOperator = SUM,
    backend: ArrayBackend | None = None,
    name: str = "prefix",
) -> np.ndarray:
    """Build the prefix array ``P`` from ``A`` with d axis sweeps (§3.3).

    The sweeps follow the storage order (one pass per dimension over the
    whole array), which is the paper's paging-friendly schedule: each page
    of ``P`` is touched a constant number of times per phase.

    Args:
        cube: The raw data cube ``A``.
        operator: The invertible aggregation operator (default SUM).
        backend: Where ``P`` is allocated; the default in-memory backend
            reproduces the historical behaviour, a
            :class:`~repro.index.MemmapBackend` builds ``P`` out-of-core
            (each sweep runs in place through the page cache).
        name: Label for file-backed allocations.

    Returns:
        A new array of the same shape holding every prefix aggregate.
    """
    cube = np.asarray(cube)
    if cube.ndim == 0:
        raise ValueError("the data cube must have at least one dimension")
    backend = resolve_backend(backend)
    prefix = backend.empty(name, cube.shape, accumulated_dtype(
        operator, cube.dtype
    ))
    prefix[...] = cube
    for axis in range(prefix.ndim):
        accumulate_axis_inplace(prefix, operator, axis)
    return prefix


@register_index(
    "prefix_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(
        dtypes=DENSE_FUZZ_DTYPES,
        operators=DENSE_FUZZ_OPERATORS,
    ),
)
class PrefixSumCube(RangeSumIndexMixin):
    """Range-sum index over a dense cube via precomputed prefix sums (§3).

    Any range-sum is answered in at most ``2^d`` reads of ``P`` and
    ``2^d − 1`` combining steps, independent of the query volume.

    The raw cube may be discarded after construction (§3.4,
    ``keep_source=False``): a single cell is itself the degenerate
    range-sum ``Sum(x1:x1, ..., xd:xd)``, so :meth:`cell` recovers it from
    ``P`` at the same ``2^d`` cost.

    Args:
        cube: The raw data cube ``A``.
        operator: Invertible aggregation operator; default SUM.
        keep_source: Keep a reference to ``A`` (needed only by callers that
            also want raw-cell reads at unit cost, e.g. benchmarks).
        backend: Array backend for ``P`` (and the retained source); pass
            a :class:`~repro.index.MemmapBackend` to build out-of-core.
    """

    def __init__(
        self,
        cube: np.ndarray,
        operator: InvertibleOperator = SUM,
        keep_source: bool = True,
        backend: ArrayBackend | None = None,
    ) -> None:
        cube = np.asarray(cube)
        self.operator = operator
        self.backend = resolve_backend(backend)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.prefix = compute_prefix_array(
            cube, operator, backend=self.backend
        )
        self.source: np.ndarray | None = (
            self.backend.materialize("source", cube) if keep_source else None
        )

    @property
    def size(self) -> int:
        """Total number of cells ``N`` of the cube (and of ``P``)."""
        return int(np.prod(self.shape))

    @property
    def storage_cells(self) -> int:
        """Cells of auxiliary storage held (``N`` for the basic method)."""
        return self.size

    def memory_cells(self) -> int:
        """Protocol spelling of :attr:`storage_cells`."""
        return int(self.storage_cells)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters (reported and persisted)."""
        return {"operator": self.operator.name}

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalars for generic persistence."""
        state: dict[str, Any] = {
            "operator": self.operator.name,
            "prefix": self.prefix,
        }
        if self.source is not None:
            state["source"] = self.source
        return state

    @classmethod
    def from_state(
        cls, state: dict[str, Any], backend: ArrayBackend | None = None
    ) -> PrefixSumCube:
        """Rebuild from :meth:`state_dict` without recomputing ``P``."""
        from repro.core.operators import get_operator

        backend = resolve_backend(backend)
        structure = cls.__new__(cls)
        structure.operator = get_operator(str(state["operator"]))
        structure.backend = backend
        structure.prefix = backend.materialize("prefix", state["prefix"])
        structure.shape = tuple(int(n) for n in structure.prefix.shape)
        structure.ndim = structure.prefix.ndim
        source = state.get("source")
        structure.source = (
            None if source is None else backend.materialize("source", source)
        )
        return structure

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Evaluate ``Sum(box)`` via Theorem 1.

        Args:
            box: Inclusive query region; must lie inside the cube.
            counter: Charged one ``prefix_cells`` unit per corner of ``P``
                actually read (corners with a ``−1`` coordinate are the
                implicit zero and cost nothing).

        Returns:
            The aggregate under the structure's operator (a scalar), or
            the operator identity when ``box`` is empty.
        """
        if self._check_box(box):
            return self.operator.identity
        op = self.operator
        positive = op.identity
        negative = op.identity
        for corner_choice in product((False, True), repeat=self.ndim):
            index = tuple(
                box.hi[j] if take_hi else box.lo[j] - 1
                for j, take_hi in enumerate(corner_choice)
            )
            if any(x < 0 for x in index):
                continue
            counter.count_prefix()
            value = self.prefix[index]
            low_corners = corner_choice.count(False)
            if low_corners % 2 == 0:
                positive = op.apply(positive, value)
            else:
                negative = op.apply(negative, value)
        return op.invert(positive, negative)

    def sum_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.range_sum(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def sum_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Answer ``K`` range-sums with one vectorized gather on ``P``.

        The batch path of :mod:`repro.query.batch`: all ``K · 2^d``
        Theorem-1 corners are read in a single fancy-indexed gather and
        combined per query along the corner axis — no per-query Python.
        Results are element-wise identical to :meth:`range_sum` for
        exact dtypes.

        Args:
            lows: ``(K, d)`` inclusive lower bounds (array-like, ints).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Charged per valid corner read, as the scalar path.

        Returns:
            A ``(K,)`` array of aggregates; empty rows (``hi < lo``)
            yield the operator identity.
        """
        from repro.query.batch import (
            normalize_query_arrays,
            prefix_sum_many,
            solve_with_identity,
        )

        lo, hi = normalize_query_arrays(
            lows, highs, self.shape, allow_empty=True
        )
        return solve_with_identity(
            lo,
            hi,
            self.operator.identity,
            lambda l, h: prefix_sum_many(
                self.prefix, l, h, self.operator, counter,
                kernel=self.kernel,
            ),
        )

    def total(self, counter: AccessCounter = NULL_COUNTER) -> object:
        """Aggregate of the entire cube (a single read of ``P``'s corner)."""
        return self.range_sum(full_box(self.shape), counter)

    def cell(
        self, index: Sequence[int], counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Reconstruct one cell of ``A`` from ``P`` alone (§3.4)."""
        point = tuple(int(i) for i in index)
        return self.range_sum(Box(point, point), counter)

    def reconstruct_cube(self) -> np.ndarray:
        """Rebuild the full raw cube ``A`` from ``P`` (inverse sweeps).

        Mirrors :func:`compute_prefix_array`: applies the inverse operator
        along each axis (adjacent differences for SUM).  Used after the
        source has been discarded.
        """
        cube = np.array(self.prefix, copy=True)
        op = self.operator
        for axis in range(cube.ndim):
            shifted = np.take(cube, range(cube.shape[axis] - 1), axis=axis)
            trailing = [slice(None)] * cube.ndim
            trailing[axis] = slice(1, None)
            cube[tuple(trailing)] = op.invert(
                np.take(cube, range(1, cube.shape[axis]), axis=axis), shifted
            )
        return cube

    def apply_updates(self, updates: Sequence[PointUpdate]) -> int:
        """Apply a batch of point updates (§5.1) to ``P`` (and ``A``).

        Args:
            updates: Buffered ``(location, value-to-add)`` updates.

        Returns:
            The number of delta-uniform regions written into ``P``
            (bounded by Theorem 2).
        """
        from repro.core.batch_update import apply_batch_to_prefix
        from repro.kernels import resolve_kernel
        from repro.kernels.segments import flatten_updates

        if self.source is not None and len(updates):
            flat, deltas = flatten_updates(updates, self.shape)
            resolve_kernel(self.kernel).scatter(
                self.source.reshape(-1), flat, deltas, self.operator
            )
        regions = apply_batch_to_prefix(self.prefix, updates, self.operator)
        self.backend.flush()
        return regions

    def _check_box(self, box: Box) -> bool:
        """Validate ``box``; True means empty (answer is the identity)."""
        return check_query_box(box, self.shape)
