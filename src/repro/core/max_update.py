"""Batch updates for the range-max tree (paper §7).

The input is a list of ``⟨index, value⟩`` assignment points into ``A``.
The algorithm runs one phase per tree level, bottom-up; each phase scans
its input list once, applies the updates to the contracted array ``A_i``,
maintains per-parent auxiliary state, and emits a (usually much shorter)
update list for the next level.

Per sibling set ``S`` with parent ``x`` (stored max index ``y0``, max
value ``v0``), an update ``⟨y, v⟩`` is classified:

* **increase-update** (``v`` larger than the current value): *active* when
  ``v > v0`` — the parent's max moves to ``y`` (``tag = 1``); an increase
  matching ``v0`` while ``tag = −1`` also *recovers* the max (``tag = 1``,
  the paper's rule 1(c)); otherwise passive.
* **decrease-update**: *active* only when ``y = y0`` and no active
  increase was seen first (``tag = 0 → −1``); if an active increase
  already beat ``v0``, the decrease cannot matter (rule 2(b)).

``tag = −1`` surviving to the end of the list is the only case requiring a
full rescan of the sibling set.  One extension beyond the paper's
exposition (which only tracks values): when a child's max *index* moves at
an unchanged max *value* — possible one level up once ties exist — the
parent's stored index is refreshed and propagated, keeping every ancestor's
index pointing at a live maximum cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.range_max import RangeMaxTree


@dataclass(frozen=True)
class MaxAssignment:
    """One buffered assignment ``A[index] = value``."""

    index: tuple[int, ...]
    value: object


@dataclass
class MaxUpdateStats:
    """Work accounting for one batch application."""

    assignments: int = 0
    items_per_phase: list[int] = field(default_factory=list)
    nodes_written: int = 0
    rescans: int = 0
    rescan_cells: int = 0

    @property
    def total_items(self) -> int:
        """Total update items processed across all phases."""
        return sum(self.items_per_phase)


@dataclass
class _ParentState:
    """Auxiliary variables of §7 for one touched parent node."""

    orig_pos: int  # stored max index (flat into A) before the batch
    orig_val: object  # v0 — stored max value before the batch
    tag: int = 0
    cand_pos: int = -1  # new_max_index (flat) when tag == 1
    cand_val: object = None
    refreshed_pos: int | None = None  # equal-value index move of y0


def _dedupe_last_wins(
    assignments: Sequence[MaxAssignment],
) -> list[MaxAssignment]:
    """Keep only the last assignment per cell (the paper assumes distinct
    indices; assignments are overwrites, so last-wins is the natural
    merge)."""
    merged: dict[tuple[int, ...], object] = {}
    for assignment in assignments:
        merged[assignment.index] = assignment.value
    return [MaxAssignment(idx, val) for idx, val in merged.items()]


def apply_max_updates(
    tree: RangeMaxTree, assignments: Sequence[MaxAssignment]
) -> MaxUpdateStats:
    """Apply a batch of assignments to ``A`` and repair the max tree (§7).

    Args:
        tree: The tree to update in place (its ``source`` cube included).
        assignments: Buffered ``⟨index, value⟩`` points.

    Returns:
        Statistics on the per-phase work (list lengths, rescans).
    """
    stats = MaxUpdateStats()
    merged = _dedupe_last_wins(assignments)
    stats.assignments = len(merged)
    if not merged or tree.height == 0:
        for assignment in merged:
            tree.source[assignment.index] = assignment.value
        tree.backend.flush()
        return stats

    # Phase items: (child_node_index, old_pos, old_val, new_pos, new_val)
    # at the phase's level; level-0 "nodes" are cells of A whose pos is
    # their own flat index.
    items: list[tuple[tuple[int, ...], int, object, int, object]] = []
    for assignment in merged:
        if len(assignment.index) != tree.ndim:
            raise ValueError(
                f"assignment index {assignment.index} has wrong "
                f"dimensionality for a {tree.ndim}-d cube"
            )
        flat = int(np.ravel_multi_index(assignment.index, tree.shape))
        old_val = tree.source[assignment.index]
        items.append(
            (assignment.index, flat, old_val, flat, assignment.value)
        )

    for level in range(tree.height):
        stats.items_per_phase.append(len(items))
        items = _run_phase(tree, level, items, stats)
        if not items:
            break
    else:
        # Updates reached the root level: apply them (no parents above).
        stats.items_per_phase.append(len(items))
        _apply_items(tree, tree.height, items, stats)
    # Sync spill files before handing back: callers (and crash recovery)
    # may read the backend's storage by path, not through this process.
    tree.backend.flush()
    return stats


def _apply_items(
    tree: RangeMaxTree,
    level: int,
    items: Sequence[tuple[tuple[int, ...], int, object, int, object]],
    stats: MaxUpdateStats,
) -> None:
    """Write update items into the storage of ``level``."""
    for node, _old_pos, _old_val, new_pos, new_val in items:
        if level == 0:
            tree.source[node] = new_val
        else:
            vals = tree.values[level]
            pos = tree.positions[level]
            assert vals is not None and pos is not None
            vals[node] = new_val
            pos[node] = new_pos
        stats.nodes_written += 1


def _run_phase(
    tree: RangeMaxTree,
    level: int,
    items: list[tuple[tuple[int, ...], int, object, int, object]],
    stats: MaxUpdateStats,
) -> list[tuple[tuple[int, ...], int, object, int, object]]:
    """Process one phase: apply items at ``level``, emit for ``level+1``."""
    parent_level = level + 1
    parent_vals = tree.values[parent_level]
    parent_pos = tree.positions[parent_level]
    assert parent_vals is not None and parent_pos is not None
    states: dict[tuple[int, ...], _ParentState] = {}

    for node, old_pos, old_val, new_pos, new_val in items:
        _apply_items(tree, level, [(node, old_pos, old_val, new_pos, new_val)], stats)
        parent = tuple(c // tree.fanout for c in node)
        state = states.get(parent)
        if state is None:
            state = _ParentState(
                orig_pos=int(parent_pos[parent]),
                orig_val=parent_vals[parent],
            )
            states[parent] = state
        child_was_max = old_pos == state.orig_pos
        if new_val > old_val:
            _handle_increase(state, new_pos, new_val)
        elif new_val < old_val:
            if child_was_max and state.tag == 0:
                state.tag = -1
        elif new_pos != old_pos and child_was_max and state.tag == 0:
            state.refreshed_pos = new_pos

    next_items: list[tuple[tuple[int, ...], int, object, int, object]] = []
    for parent, state in states.items():
        new_pos, new_val = _finalize_parent(tree, level, parent, state, stats)
        if new_pos == state.orig_pos and new_val == state.orig_val:
            continue
        next_items.append(
            (parent, state.orig_pos, state.orig_val, new_pos, new_val)
        )
    return next_items


def _handle_increase(
    state: _ParentState, new_pos: int, new_val: object
) -> None:
    """Rules 1(b) and 1(c) of §7 for an increase-update."""
    if state.tag == 1:
        if new_val > state.cand_val:
            state.cand_pos = new_pos
            state.cand_val = new_val
    elif new_val > state.orig_val or (
        state.tag == -1 and new_val == state.orig_val
    ):
        state.tag = 1
        state.cand_pos = new_pos
        state.cand_val = new_val


def _finalize_parent(
    tree: RangeMaxTree,
    level: int,
    parent: tuple[int, ...],
    state: _ParentState,
    stats: MaxUpdateStats,
) -> tuple[int, object]:
    """Resolve a parent's new (pos, val) once its phase's list is done."""
    if state.tag == 1:
        return state.cand_pos, state.cand_val
    if state.tag == -1:
        return _rescan_children(tree, level, parent, stats)
    if state.refreshed_pos is not None:
        return state.refreshed_pos, state.orig_val
    return state.orig_pos, state.orig_val


def _rescan_children(
    tree: RangeMaxTree,
    level: int,
    parent: tuple[int, ...],
    stats: MaxUpdateStats,
) -> tuple[int, object]:
    """Full scan of a sibling set (the ``tag = −1`` fallback of §7)."""
    stats.rescans += 1
    region = tree.node_region(level + 1, parent)
    if level == 0:
        window = tree.source[region.slices()]
        stats.rescan_cells += window.size
        local = np.unravel_index(int(np.argmax(window)), window.shape)
        point = tuple(l + o for l, o in zip(region.lo, local))
        return (
            int(np.ravel_multi_index(point, tree.shape)),
            tree.source[point],
        )
    vals = tree.values[level]
    pos = tree.positions[level]
    assert vals is not None and pos is not None
    child_shape = tree.level_shape(level)
    slices = tuple(
        slice(
            c * tree.fanout, min((c + 1) * tree.fanout, n)
        )
        for c, n in zip(parent, child_shape)
    )
    window = vals[slices]
    stats.rescan_cells += window.size
    local = np.unravel_index(int(np.argmax(window)), window.shape)
    child = tuple(s.start + o for s, o in zip(slices, local))
    return int(pos[child]), vals[child]
