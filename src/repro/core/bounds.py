"""Progressive range-sum and range-max bounds (paper §11).

*"one can implement the range-sum algorithm so that an upper bound and a
lower bound on the range-sum are returned to users first, followed by a
real sum when the final computation is completed.  This is because each
bound can be derived in at most 2^d − 1 computation steps."*

For a cube of non-negative measures (revenue, counts, ... — the normal
OLAP case) the blocked structure yields both bounds from ``P`` alone:

* **lower bound** — the sum of the query's block-aligned *internal*
  region (a subset of the query);
* **upper bound** — the sum of the query's block-aligned *enclosing*
  region ``l''_j : h''_j − 1`` (a superset of the query).

Each is one Theorem 1 evaluation on the blocked prefix array, i.e. at most
``2^d`` reads and ``2^d − 1`` combining steps, after which the exact answer
can be streamed in.  Bound tightness improves as the block size shrinks
(measured in ``benchmarks/bench_progressive_bounds.py``).

§11 closes with *"The same approximation approach can be applied to the
range-max queries using the tree algorithm"*: one level of the max tree
below the lowest covering node yields both bounds in at most ``b^d``
accesses —

* **upper bound** — the max of every non-external child's stored value
  (their covers jointly contain the query);
* **lower bound** — the best value already *known* to lie inside the
  query: stored maxima of internal and ``B_in`` children, else a seed
  cell of the region.

:func:`progressive_max_bounds` implements that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import Box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.range_max import RangeMaxTree
from repro.instrumentation import NULL_COUNTER, AccessCounter


@dataclass(frozen=True)
class ProgressiveBounds:
    """The early answer: ``lower <= exact <= upper`` (non-negative cubes)."""

    lower: object
    upper: object
    inner_region: Box | None
    outer_region: Box

    def width(self) -> object:
        """Absolute slack between the two bounds."""
        return self.upper - self.lower


def progressive_bounds(
    structure: BlockedPrefixSumCube,
    box: Box,
    counter: AccessCounter = NULL_COUNTER,
) -> ProgressiveBounds:
    """Constant-time lower/upper bounds for ``Sum(box)`` (§11).

    Args:
        structure: A blocked prefix-sum cube over *non-negative* measures
            (the bounds are not valid for mixed-sign cubes).
        box: The query region.
        counter: Charged for the ``<= 2·2^d`` prefix reads.

    Returns:
        The pair of bounds plus the aligned regions they were read from.
    """
    structure._check_box(box)
    b = structure.block_size
    inner_lo = []
    inner_hi = []
    outer_lo = []
    outer_hi = []
    for lo, hi, n in zip(box.lo, box.hi, structure.shape):
        # Tightest aligned region inside the query: lo rounded up to a
        # block start, hi+1 rounded down to a block end.  (The query
        # algorithm's l'/h' of §4 are looser on aligned tails; bounds
        # benefit from the tight variant.)
        inner_lo.append(b * math.ceil(lo / b))
        inner_hi.append(b * ((hi + 1) // b) - 1)
        # Tightest aligned region containing the query.
        outer_lo.append(b * (lo // b))
        outer_hi.append(min(b * (hi // b + 1), n) - 1)
    outer = Box(tuple(outer_lo), tuple(outer_hi))
    upper = structure._aligned_region_sum(outer, counter)
    inner: Box | None = Box(tuple(inner_lo), tuple(inner_hi))
    if inner.is_empty:
        inner = None
        lower = structure.operator.identity
    else:
        lower = structure._aligned_region_sum(inner, counter)
    return ProgressiveBounds(
        lower=lower, upper=upper, inner_region=inner, outer_region=outer
    )


@dataclass(frozen=True)
class MaxBounds:
    """The early range-max answer: ``lower <= Max(R) <= upper``."""

    lower: object
    upper: object

    def width(self) -> object:
        """Absolute slack between the two bounds."""
        return self.upper - self.lower


def progressive_max_bounds(
    tree: RangeMaxTree,
    box: Box,
    counter: AccessCounter = NULL_COUNTER,
) -> MaxBounds:
    """Constant-time lower/upper bounds for ``Max(box)`` (§11's remark).

    One level of the tree below the lowest covering node is inspected:
    every child whose cover meets the query contributes its stored max to
    the **upper** bound; children resolvable in one access (internal, or
    boundary with the stored index inside the query) contribute to the
    **lower** bound, seeded by one raw cell so the lower bound always
    exists.  Cost is at most ``b^d`` child reads plus one cell read.

    Args:
        tree: A built :class:`RangeMaxTree`.
        box: The query region.
        counter: Charged per node/cell read.

    Returns:
        The bounds pair; ``lower == upper`` means the max is exact.
    """
    tree._check_box(box)
    counter.count_cube(1)
    seed = tree.source[box.lo]
    level, node = tree._lowest_covering_node(box)
    if level == 0:
        return MaxBounds(seed, seed)
    counter.count_tree(1)
    stored = tree._node_point(level, node)
    node_value = tree.values[level][node]
    if box.contains_point(stored):
        return MaxBounds(node_value, node_value)
    if level == 1:
        # Children are raw cells; the cover's max lies outside the query,
        # so the stored value is only an upper bound.
        return MaxBounds(seed, node_value)
    lower = seed
    upper = None
    child_values = tree.values[level - 1]
    for child in tree._iter_children(level, node):
        cover = tree.node_region(level - 1, child)
        overlap = cover.intersect(box)
        if overlap.is_empty:
            continue
        counter.count_tree(1)
        value = child_values[child]
        upper = value if upper is None else max(upper, value)
        child_point = tree._node_point(level - 1, child)
        if box.contains_box(cover) or box.contains_point(child_point):
            if value > lower:
                lower = value
    assert upper is not None  # the node covers the query
    return MaxBounds(lower, upper)
