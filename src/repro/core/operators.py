"""Invertible aggregation operators for prefix-"sum" structures.

Section 1 of the paper: *"Techniques described for range-sum queries can be
applied to any binary operator ⊕ for which there exists an inverse binary
operator ⊖ such that a ⊕ b ⊖ b = a."*  The paper's examples are

* ``(+, −)`` — SUM (and COUNT, and AVERAGE via (sum, count) pairs),
* ``(xor, xor)`` — bitwise exclusive or, which is its own inverse,
* ``(×, ÷)`` — multiplication over a zero-free domain.

:class:`InvertibleOperator` packages one such pair along with the numpy
ufuncs needed to build the prefix array with vectorized sweeps.  The SUM
operator is the default everywhere; the others make the generality claim
executable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np


@dataclass(frozen=True)
class InvertibleOperator:
    """A binary operator ``apply`` with inverse ``invert``.

    Attributes:
        name: Human-readable operator name.
        apply: The aggregation ``⊕`` (a numpy ufunc or compatible callable).
        invert: The inverse ``⊖`` satisfying ``invert(apply(a, b), b) == a``.
        identity: The neutral element ``e`` with ``apply(e, a) == a``.
        accumulate: Cumulative application along one axis of an ndarray,
            used by the d-phase prefix construction (paper §3.3).
    """

    name: str
    apply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    invert: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity: object
    accumulate: Callable[[np.ndarray, int], np.ndarray]
    #: Whether repeated application can outgrow the source dtype (SUM and
    #: PRODUCT do; XOR never leaves the operand's bit width).
    widening: bool = True

    def accumulation_dtype(self, dtype: object) -> np.dtype:
        """The dtype prefix accumulation must run in for ``dtype`` cubes.

        The normative promotion policy (see ``docs/TESTING.md``): for
        widening operators, bool and signed integers accumulate in at
        least ``int64``, unsigned integers in at least ``uint64``, and
        floats in at least ``float64`` — a prefix cell holds a sum over
        up to ``N`` cells, so keeping a small source dtype silently
        wraps (``int8``) or loses integer precision (``float32``).
        Non-widening operators (XOR) keep whatever their ``accumulate``
        produces.  The probed dtype is never narrowed, so platforms
        whose ufuncs already promote further are respected.
        """
        dtype = np.dtype(dtype)
        probed = np.asarray(
            self.accumulate(np.zeros(1, dtype=dtype), 0)
        ).dtype
        if not self.widening:
            return probed
        if dtype == np.bool_ or np.issubdtype(dtype, np.signedinteger):
            floor = np.dtype(np.int64)
        elif np.issubdtype(dtype, np.unsignedinteger):
            floor = np.dtype(np.uint64)
        elif np.issubdtype(dtype, np.floating):
            floor = np.dtype(np.float64)
        else:
            return probed
        return np.promote_types(probed, floor)

    def reduce_box(self, values: np.ndarray) -> object:
        """Aggregate every element of ``values`` with ``⊕``.

        Used by query paths that scan raw cube cells (boundary regions of
        the blocked algorithm, naive baselines).  Runs in the promoted
        :meth:`accumulation_dtype`, so a scan over many small-int or
        float32 cells matches the prefix array's arithmetic instead of
        wrapping in the source dtype.
        """
        flat = np.asarray(values).ravel()
        if flat.size == 0:
            return self.identity
        if isinstance(self.apply, np.ufunc):
            return self.apply.reduce(
                flat, dtype=self.accumulation_dtype(flat.dtype)
            )
        result = flat[0]
        for value in flat[1:]:
            result = self.apply(result, value)
        return result

    def __repr__(self) -> str:
        return f"InvertibleOperator({self.name!r})"


def _checked_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Division that refuses zero divisors (the paper excludes 0)."""
    if np.any(np.asarray(b) == 0):
        raise ZeroDivisionError(
            "the (multiply, divide) operator requires a zero-free domain"
        )
    return np.divide(a, b)


# The ``accumulate`` lambdas below are *deliberately* dtype-polymorphic:
# they are the raw sweeps that ``accumulation_dtype`` itself probes, and
# every caller pre-promotes its array before sweeping — so they must not
# force a dtype of their own.

#: The paper's headline operator pair ``(+, −)``.
SUM = InvertibleOperator(
    name="sum",
    apply=np.add,
    invert=np.subtract,
    identity=0,
    accumulate=lambda arr, axis: np.cumsum(arr, axis=axis),  # cubelint: allow[dtype-safety]
)

#: ``(xor, xor)`` — self-inverse, integer domains only.
XOR = InvertibleOperator(
    name="xor",
    apply=np.bitwise_xor,
    invert=np.bitwise_xor,
    identity=0,
    accumulate=lambda arr, axis: np.bitwise_xor.accumulate(arr, axis=axis),  # cubelint: allow[dtype-safety]
    widening=False,
)

#: ``(×, ÷)`` over a domain excluding zero.
PRODUCT = InvertibleOperator(
    name="product",
    apply=np.multiply,
    invert=_checked_divide,
    identity=1,
    accumulate=lambda arr, axis: np.multiply.accumulate(arr, axis=axis),  # cubelint: allow[dtype-safety]
)

#: Registry keyed by name for config-style lookups.
OPERATORS: dict[str, InvertibleOperator] = {
    op.name: op for op in (SUM, XOR, PRODUCT)
}


def get_operator(name: str) -> InvertibleOperator:
    """Look up a registered operator by name.

    Raises:
        KeyError: If ``name`` is not one of ``sum``, ``xor``, ``product``.
    """
    try:
        return OPERATORS[name]
    except KeyError:
        known = ", ".join(sorted(OPERATORS))
        raise KeyError(f"unknown operator {name!r}; known: {known}") from None
