"""Batch updates to prefix-sum arrays (paper §5).

A single point update of ``A[x1..xd]`` dirties every ``P[y1..yd]`` with
``y_j >= x_j`` — up to the whole array ``P`` (``O(N)``).  In OLAP practice
updates arrive in batches (e.g. nightly loads), so the paper batches ``k``
updates, each carried as ``(location, value-to-add)``, and partitions all
*affected* cells of ``P`` into disjoint rectangular regions such that every
cell in a region needs the same combined delta (Properties 1 and 2 in
§5.1).  Theorem 2 bounds the region count by ``∏_{j=0}^{d−1}(k+j) / d!``.

The partition is the paper's recursion on ``d``:

* ``d = 1``: sort the update indices ``u_1 <= ... <= u_k``; region ``i``
  is ``[u_i, u_{i+1} − 1]`` (with ``u_{k+1} = n``) and receives the running
  total ``V_i = v_1 ⊕ ... ⊕ v_i``.
* ``d > 1``: sort by the first index; slab ``i`` spans
  ``[u_i, u_{i+1} − 1]`` on dimension 1 and recursively solves the
  ``(d−1)``-dimensional problem over the first ``i`` updates' remaining
  coordinates.

The blocked variant (§5.2) first contracts updates block-wise — one
combined delta per touched ``b^d`` block — then runs the same algorithm on
the contracted index space against the blocked prefix array.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import Box
from repro.core.operators import SUM, InvertibleOperator


@dataclass(frozen=True)
class PointUpdate:
    """One buffered update: set ``A[index]``'s contribution up by ``delta``.

    ``delta`` is the paper's *value-to-add*: new value ⊖ old value.  Use
    :func:`delta_for_assignment` to derive it from an assignment-style
    update under a generic operator.
    """

    index: tuple[int, ...]
    delta: object


def delta_for_assignment(
    old_value: object,
    new_value: object,
    operator: InvertibleOperator = SUM,
) -> object:
    """The value-to-add turning ``old_value`` into ``new_value``."""
    return operator.invert(new_value, old_value)


def combine_duplicate_updates(
    updates: Sequence[PointUpdate], operator: InvertibleOperator = SUM
) -> list[PointUpdate]:
    """Merge updates hitting the same cell into one combined delta.

    The paper assumes distinct locations "for clarity"; merging first makes
    the batch algorithm insensitive to that restriction.
    """
    merged: dict[tuple[int, ...], object] = {}
    for update in updates:
        if update.index in merged:
            merged[update.index] = operator.apply(
                merged[update.index], update.delta
            )
        else:
            merged[update.index] = update.delta
    return [PointUpdate(index, delta) for index, delta in merged.items()]


def partition_updates(
    updates: Sequence[PointUpdate],
    shape: Sequence[int],
    operator: InvertibleOperator = SUM,
) -> list[tuple[Box, object]]:
    """Partition the affected cells of ``P`` into delta-uniform regions.

    Args:
        updates: Buffered point updates (duplicates are merged first).
        shape: Shape of the prefix array ``P``.
        operator: The aggregation operator whose group structure combines
            deltas.

    Returns:
        Disjoint ``(region, combined_delta)`` pairs covering exactly the
        affected cells.  Their count satisfies the Theorem 2 bound
        ``∏_{j=0}^{d−1}(k+j)/d!`` (checked empirically in the benchmark
        suite).
    """
    shape = tuple(int(n) for n in shape)
    ndim = len(shape)
    merged = combine_duplicate_updates(updates, operator)
    for update in merged:
        if len(update.index) != ndim:
            raise ValueError(
                f"update index {update.index} has wrong dimensionality"
            )
        if not all(0 <= x < n for x, n in zip(update.index, shape)):
            raise ValueError(
                f"update index {update.index} outside shape {shape}"
            )
    points = [(u.index, u.delta) for u in merged]
    return _partition(points, shape, operator)


def _partition(
    points: list[tuple[tuple[int, ...], object]],
    shape: tuple[int, ...],
    operator: InvertibleOperator,
) -> list[tuple[Box, object]]:
    """The recursion of §5.1 over ``(index-tail, delta)`` pairs."""
    if not points:
        return []
    ndim = len(shape)
    points = sorted(points, key=lambda p: p[0][0])
    boundaries = [p[0][0] for p in points] + [shape[0]]
    regions: list[tuple[Box, object]] = []
    if ndim == 1:
        running = operator.identity
        for i, (point, delta) in enumerate(points):
            running = operator.apply(running, delta)
            lo, hi = boundaries[i], boundaries[i + 1] - 1
            if lo > hi:
                continue
            regions.append((Box((lo,), (hi,)), running))
        return regions
    for i in range(len(points)):
        lo, hi = boundaries[i], boundaries[i + 1] - 1
        if lo > hi:
            continue
        tails = [(p[0][1:], p[1]) for p in points[: i + 1]]
        for sub_box, delta in _partition(tails, shape[1:], operator):
            regions.append(
                (Box((lo,) + sub_box.lo, (hi,) + sub_box.hi), delta)
            )
    return regions


def apply_batch_to_prefix(
    prefix: np.ndarray,
    updates: Sequence[PointUpdate],
    operator: InvertibleOperator = SUM,
) -> int:
    """Apply a batch of updates to a basic prefix array in place.

    Returns:
        The number of delta-uniform regions written (for Theorem 2
        validation; each affected cell of ``P`` is written exactly once).
    """
    regions = partition_updates(updates, prefix.shape, operator)
    for box, delta in regions:
        view = prefix[box.slices()]
        view[...] = operator.apply(view, delta)
    return len(regions)


def apply_updates_naive(
    prefix: np.ndarray,
    updates: Sequence[PointUpdate],
    operator: InvertibleOperator = SUM,
) -> int:
    """One-at-a-time baseline: each update rewrites its whole suffix box.

    Returns:
        Total cells written (the batch algorithm's advantage is that it
        writes each affected cell once; this baseline writes popular cells
        up to ``k`` times).
    """
    cells_written = 0
    for update in updates:
        slices = tuple(slice(x, None) for x in update.index)
        view = prefix[slices]
        view[...] = operator.apply(view, update.delta)
        cells_written += view.size
    return cells_written


def contract_updates_to_blocks(
    updates: Sequence[PointUpdate],
    block_size: int,
    operator: InvertibleOperator = SUM,
) -> list[PointUpdate]:
    """Phase 1 of the blocked batch update (§5.2).

    Every update's location is contracted to its block index and deltas
    landing in the same block are combined, so phase 2 can treat each block
    as one element of the contracted cube.
    """
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    contracted = [
        PointUpdate(
            tuple(x // block_size for x in update.index), update.delta
        )
        for update in updates
    ]
    return combine_duplicate_updates(contracted, operator)


def theorem2_region_bound(k: int, d: int) -> int:
    """The Theorem 2 upper bound ``∏_{j=0}^{d−1}(k+j) / d!`` on regions."""
    if k < 0 or d < 1:
        raise ValueError("need k >= 0 and d >= 1")
    numerator = 1
    for j in range(d):
        numerator *= k + j
    factorial = 1
    for j in range(2, d + 1):
        factorial *= j
    return numerator // factorial
