"""Prefix sums over a *subset* of the cube's dimensions (paper §9.1).

Section 9.1 observes that prefix-summing every dimension is wasteful when
queries never put ranges on some attribute: each prefix-summed dimension
contributes a factor 2 to every query's term count, while a passive
dimension contributes only its selected length (1 for a singleton).  The
example: with ranges only ever on d1 and d2, computing prefix sums along
d1 and d2 alone answers queries in ``2² − 1 = 3`` steps instead of
``2³ − 1 = 7``.

:class:`PartialPrefixSumCube` executes that design point.  The prefix
array accumulates along the chosen dimensions only; a query combines
``2^{d'}`` corner *slabs* (one per corner of the chosen dimensions),
each slab summed over the query's extent in the unchosen dimensions — an
access cost of exactly ``2^{d'} · ∏_{j ∉ X'} r_j``, the multiplicative
model the §9.1 selection algorithms optimize.
"""

from __future__ import annotations

from itertools import product
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro._util import Box, check_query_box
from repro.core.operators import SUM, InvertibleOperator
from repro.core.prefix_sum import (
    DENSE_FUZZ_DTYPES,
    DENSE_FUZZ_OPERATORS,
    accumulate_axis_inplace,
    accumulated_dtype,
)
from repro.index.backend import ArrayBackend, resolve_backend
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter


def _sample_partial_params(rng: np.random.Generator, shape: tuple[int, ...]) -> dict[str, Any]:
    """Draw a random (possibly empty) prefix-dimension subset."""
    ndim = len(shape)
    mask = rng.integers(0, 2, size=ndim)
    return {"prefix_dims": tuple(int(j) for j in np.nonzero(mask)[0])}


@register_index(
    "partial_prefix_sum",
    kind="sum",
    fuzz_profile=FuzzProfile(
        dtypes=DENSE_FUZZ_DTYPES,
        operators=DENSE_FUZZ_OPERATORS,
        sample_params=_sample_partial_params,
    ),
)
class PartialPrefixSumCube(RangeSumIndexMixin):
    """Prefix-sum structure along a chosen dimension subset ``X'``.

    Args:
        cube: The raw data cube ``A``.
        prefix_dims: Dimensions to accumulate along (the ``X'`` of §9.1).
            The empty subset degenerates to a plain copy of ``A`` (every
            query is then a full scan of its region).
        operator: Invertible aggregation operator; default SUM.
        backend: Array backend for the partial prefix array; pass a
            :class:`~repro.index.MemmapBackend` to build out-of-core.
    """

    def __init__(
        self,
        cube: np.ndarray,
        prefix_dims: Sequence[int],
        operator: InvertibleOperator = SUM,
        backend: ArrayBackend | None = None,
    ) -> None:
        cube = np.asarray(cube)
        self.operator = operator
        self.backend = resolve_backend(backend)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        chosen = sorted(set(int(j) for j in prefix_dims))
        if chosen and not 0 <= chosen[0] <= chosen[-1] < cube.ndim:
            raise ValueError(
                f"prefix dims {prefix_dims} out of range for a "
                f"{cube.ndim}-d cube"
            )
        self.prefix_dims = tuple(chosen)
        self.passive_dims = tuple(
            j for j in range(cube.ndim) if j not in set(chosen)
        )
        dtype = (
            accumulated_dtype(operator, cube.dtype)
            if self.prefix_dims
            else cube.dtype
        )
        prefix = self.backend.empty("partial_prefix", cube.shape, dtype)
        prefix[...] = cube
        for axis in self.prefix_dims:
            accumulate_axis_inplace(prefix, operator, axis)
        self.prefix = prefix
        # Lazily built full-prefix cache for the batch query path (an
        # extra accumulation along the passive dimensions); dropped on
        # every update so it can never go stale.
        self._batch_prefix: np.ndarray | None = None

    @property
    def storage_cells(self) -> int:
        """Cells of auxiliary storage (always ``N``)."""
        return int(np.prod(self.shape))

    def memory_cells(self) -> int:
        """Protocol spelling of :attr:`storage_cells`."""
        return int(self.storage_cells)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters (reported and persisted)."""
        return {
            "prefix_dims": self.prefix_dims,
            "operator": self.operator.name,
        }

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalars for generic persistence."""
        return {
            "operator": self.operator.name,
            "prefix_dims": np.asarray(self.prefix_dims, dtype=np.int64),
            "prefix": self.prefix,
        }

    @classmethod
    def from_state(
        cls, state: dict[str, Any], backend: ArrayBackend | None = None
    ) -> PartialPrefixSumCube:
        """Rebuild from :meth:`state_dict` without re-accumulating."""
        from repro.core.operators import get_operator

        backend = resolve_backend(backend)
        structure = cls.__new__(cls)
        structure.operator = get_operator(str(state["operator"]))
        structure.backend = backend
        structure.prefix = backend.materialize("partial_prefix", state["prefix"])
        structure.shape = tuple(int(n) for n in structure.prefix.shape)
        structure.ndim = structure.prefix.ndim
        structure.prefix_dims = tuple(
            int(j) for j in np.asarray(state["prefix_dims"]).ravel()
        )
        structure.passive_dims = tuple(
            j
            for j in range(structure.ndim)
            if j not in set(structure.prefix_dims)
        )
        structure._batch_prefix = None
        return structure

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Evaluate ``Sum(box)``.

        Cost: ``2^{d'}`` corner slabs, each of
        ``∏_{j ∉ X'} (h_j − l_j + 1)`` cells — the §9.1 model exactly.
        An empty ``box`` yields the operator identity.
        """
        if self._check_box(box):
            return self.operator.identity
        op = self.operator
        passive_slices = {
            j: slice(box.lo[j], box.hi[j] + 1) for j in self.passive_dims
        }
        passive_cells = 1
        for j in self.passive_dims:
            passive_cells *= box.hi[j] - box.lo[j] + 1
        positive = op.identity
        negative = op.identity
        for corner_choice in product(
            (False, True), repeat=len(self.prefix_dims)
        ):
            index: list[object] = [None] * self.ndim
            skip = False
            for j, take_hi in zip(self.prefix_dims, corner_choice):
                coordinate = box.hi[j] if take_hi else box.lo[j] - 1
                if coordinate < 0:
                    skip = True
                    break
                index[j] = coordinate
            if skip:
                continue
            for j in self.passive_dims:
                index[j] = passive_slices[j]
            counter.count_prefix(passive_cells)
            slab = self.prefix[tuple(index)]
            value = op.reduce_box(np.asarray(slab))
            low_corners = corner_choice.count(False)
            if low_corners % 2 == 0:
                positive = op.apply(positive, value)
            else:
                negative = op.apply(negative, value)
        return op.invert(positive, negative)

    def sum_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.range_sum(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def _batch_prefix_array(self) -> np.ndarray:
        """The full prefix array used by the batch path (lazily built).

        Summing a corner slab over the passive extents equals a
        difference of cumulative sums along the passive axes, so the
        whole §9.1 combination collapses to Theorem 1 on the fully
        accumulated array.  The cache costs one extra ``N``-cell array
        but turns a batch of ``K`` queries into a single gather.
        """
        if self._batch_prefix is None:
            # The stored array keeps the raw dtype when no dimension is
            # prefix-summed; the cache must still accumulate in the
            # promoted dtype to match the scalar path's arithmetic.
            prefix = np.array(
                self.prefix,
                copy=True,
                dtype=self.operator.accumulation_dtype(self.prefix.dtype),
            )
            for axis in self.passive_dims:
                prefix = self.operator.accumulate(prefix, axis)
            self._batch_prefix = prefix
        return self._batch_prefix

    def sum_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Answer ``K`` range-sums with one gather (batch path).

        Uses the lazily built full-prefix cache of
        :meth:`_batch_prefix_array`; the first call after construction
        (or after an update batch) pays one accumulation sweep over the
        passive dimensions, every later call is a single gather.

        Args:
            lows: ``(K, d)`` inclusive lower bounds (array-like, ints).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Charged per valid corner read of the cached array.

        Returns:
            A ``(K,)`` array of aggregates; empty rows (``hi < lo``)
            yield the operator identity.
        """
        from repro.query.batch import (
            normalize_query_arrays,
            prefix_sum_many,
            solve_with_identity,
        )

        lo, hi = normalize_query_arrays(
            lows, highs, self.shape, allow_empty=True
        )
        return solve_with_identity(
            lo,
            hi,
            self.operator.identity,
            lambda l, h: prefix_sum_many(
                self._batch_prefix_array(), l, h, self.operator, counter,
                kernel=self.kernel,
            ),
        )

    def apply_updates(self, updates: Sequence[PointUpdate]) -> int:
        """Batch-update the partial prefix array (§5 along ``X'`` only).

        An update at ``x`` dirties exactly the cells with ``y_j >= x_j``
        on the chosen dimensions and ``y_j == x_j`` on the passive ones,
        so the §5 recursion runs per distinct passive coordinate, inside
        the chosen-dimension subspace.

        Returns:
            The number of delta-uniform regions written.
        """
        from repro.core.batch_update import (
            PointUpdate,
            partition_updates,
        )

        self._batch_prefix = None  # the batch-path cache is now stale
        op = self.operator
        if not self.prefix_dims:
            for update in updates:
                self.prefix[update.index] = op.apply(
                    self.prefix[update.index], update.delta
                )
            self.backend.flush()
            return len(updates)
        groups: dict[tuple[int, ...], list[PointUpdate]] = {}
        for update in updates:
            if len(update.index) != self.ndim:
                raise ValueError(
                    f"update index {update.index} has wrong dimensionality"
                )
            passive = tuple(update.index[j] for j in self.passive_dims)
            chosen = tuple(update.index[j] for j in self.prefix_dims)
            groups.setdefault(passive, []).append(
                PointUpdate(chosen, update.delta)
            )
        chosen_shape = tuple(self.shape[j] for j in self.prefix_dims)
        total_regions = 0
        for passive, group in groups.items():
            regions = partition_updates(group, chosen_shape, op)
            total_regions += len(regions)
            for box, delta in regions:
                index: list[object] = [None] * self.ndim
                for j, coordinate in zip(self.passive_dims, passive):
                    index[j] = coordinate
                for position, j in enumerate(self.prefix_dims):
                    index[j] = slice(
                        box.lo[position], box.hi[position] + 1
                    )
                view = self.prefix[tuple(index)]
                view[...] = op.apply(view, delta)
        self.backend.flush()
        return total_regions

    def query_cost(self, box: Box) -> int:
        """The §9.1 model cost of a query: ``2^{d'} · ∏ passive r_j``.

        The actual access count is at most this (origin-anchored corners
        are free), making the model an upper bound the tests verify.
        """
        cost = 1 << len(self.prefix_dims)
        for j in self.passive_dims:
            cost *= box.hi[j] - box.lo[j] + 1
        return cost

    def _check_box(self, box: Box) -> bool:
        """Validate ``box``; True means empty (answer is the identity)."""
        return check_query_box(box, self.shape)
