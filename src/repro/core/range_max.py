"""The tree-based range-max method with branch and bound (paper §6).

The structure is a generalized quad-tree: a balanced tree of fanout
``B = b^d`` built bottom-up over the cube.  A node at level ``i`` covers a
``b^i × ... × b^i`` region of leaves (the last node per level and dimension
may cover less) and stores the **index** of the maximum value inside the
region it covers — one integer per node, values being recoverable from
``A`` itself.

A range-max query ``Max_index(R)``:

1. finds the *lowest-level* node ``x`` whose cover contains ``R`` (via the
   base-``b`` digit prefix shared by ``l`` and ``h``; this, not the root,
   bounds the 1-d worst case by ``O(b log_b r)`` instead of
   ``O(b log_b n)``);
2. if the precomputed ``Max_index(C(x))`` already falls inside ``R``, that
   is the answer;
3. otherwise it walks down, classifying each child as **internal**
   (``C(y) ⊆ R``), **external** (disjoint — never touched), or
   **boundary**; boundary children whose stored max index falls inside
   ``R`` (the set ``B_in``) resolve in one access, and the remaining
   boundary children (``B_out``) are recursed into **only when their
   precomputed max exceeds the best value found so far** — the
   branch-and-bound rule, sound because
   ``∃ i ∈ S₂ : i ≥ max(S₁) ⇒ max(S₂) = max(S₂ − S₁)``.

Theorem 3: with random data the expected number of accesses in 1-d is at
most ``b + 7 + 1/b`` — far below the worst case (validated empirically in
``benchmarks/bench_rangemax_average.py``).
"""

from __future__ import annotations

from itertools import product
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._util import Box, check_query_box, full_box
from repro.index.backend import ArrayBackend, resolve_backend
from repro.index.protocol import RangeMaxIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.batch_update import PointUpdate


def _sentinel_for(dtype: np.dtype) -> object:
    """The smallest representable value, used to pad partial blocks."""
    if np.issubdtype(dtype, np.floating):
        return -np.inf
    if np.issubdtype(dtype, np.integer):
        return np.iinfo(dtype).min
    raise TypeError(f"range-max requires numeric cubes, got dtype {dtype}")


def _contract_argmax(
    values: np.ndarray, positions: np.ndarray, fanout: int
) -> tuple[np.ndarray, np.ndarray]:
    """One bottom-up level step: per-block argmax of ``values``.

    Args:
        values: Current level's max values (level 0: the cube itself).
        positions: Matching flat indices into the original cube.
        fanout: Per-dimension fanout ``b``.

    Returns:
        ``(values, positions)`` of the next level, one entry per block of
        ``b^d`` children (partial blocks padded with the dtype's minimum).
    """
    ndim = values.ndim
    pad_widths = []
    for n in values.shape:
        remainder = (-n) % fanout
        pad_widths.append((0, remainder))
    padded_vals = np.pad(
        values,
        pad_widths,
        constant_values=_sentinel_for(values.dtype),
    )
    padded_pos = np.pad(positions, pad_widths, constant_values=-1)
    block_shape = tuple(n // fanout for n in padded_vals.shape)
    interleaved = []
    for n_blocks in block_shape:
        interleaved.extend((n_blocks, fanout))
    vals = padded_vals.reshape(interleaved)
    pos = padded_pos.reshape(interleaved)
    order = list(range(0, 2 * ndim, 2)) + list(range(1, 2 * ndim, 2))
    vals = vals.transpose(order).reshape(block_shape + (fanout**ndim,))
    pos = pos.transpose(order).reshape(block_shape + (fanout**ndim,))
    winners = np.argmax(vals, axis=-1)
    next_vals = np.take_along_axis(
        vals, winners[..., None], axis=-1
    ).squeeze(-1)
    next_pos = np.take_along_axis(
        pos, winners[..., None], axis=-1
    ).squeeze(-1)
    return next_vals, next_pos


def _sample_max_tree_params(rng: np.random.Generator, shape: tuple[int, ...]) -> dict[str, Any]:
    """Draw a fuzzable per-dimension fanout."""
    return {"fanout": int(rng.integers(2, 6))}


@register_index(
    "range_max_tree",
    kind="max",
    fuzz_profile=FuzzProfile(
        dtypes=(
            "int8",
            "int16",
            "int32",
            "int64",
            "uint8",
            "uint16",
            "uint32",
            "uint64",
            "float32",
            "float64",
        ),
        operators=(),
        sample_params=_sample_max_tree_params,
    ),
)
class RangeMaxTree(RangeMaxIndexMixin):
    """Precomputed max indices over a balanced ``b^d``-ary tree (§6).

    Args:
        cube: The raw data cube ``A`` (numeric).  A copy is retained —
            the tree stores indices, so values must stay addressable.
        fanout: Per-dimension fanout ``b >= 2``.
        backend: Array backend for the retained cube and the per-level
            arrays; pass a :class:`~repro.index.MemmapBackend` to build
            out-of-core.
    """

    def __init__(
        self,
        cube: np.ndarray,
        fanout: int,
        backend: ArrayBackend | None = None,
    ) -> None:
        cube = np.asarray(cube)
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if cube.ndim == 0:
            raise ValueError("the data cube must have at least one dimension")
        _sentinel_for(cube.dtype)  # fail fast on unsupported dtypes
        self.fanout = int(fanout)
        self.backend = resolve_backend(backend)
        self.source = self.backend.materialize("source", cube)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        # Level arrays; index 0 is a placeholder so self.values[i] is the
        # contracted array A_i of the paper for i >= 1.
        self.values: list[np.ndarray | None] = [None]
        self.positions: list[np.ndarray | None] = [None]
        vals = self.source
        pos = np.arange(self.source.size, dtype=np.int64).reshape(self.shape)
        while any(n > 1 for n in vals.shape):
            vals, pos = _contract_argmax(vals, pos, self.fanout)
            level = len(self.values)
            vals = self.backend.materialize(f"values_{level}", vals)
            pos = self.backend.materialize(f"positions_{level}", pos)
            self.values.append(vals)
            self.positions.append(pos)
        self.height = len(self.values) - 1

    @property
    def node_count(self) -> int:
        """Total number of non-leaf nodes stored."""
        return sum(v.size for v in self.values[1:] if v is not None)

    def memory_cells(self) -> int:
        """Protocol spelling of :attr:`node_count` (nodes held)."""
        return int(self.node_count)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters (reported and persisted)."""
        return {"fanout": self.fanout}

    # ------------------------------------------------------------------
    # Protocol surface (RangeMaxIndex)
    # ------------------------------------------------------------------

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """Protocol spelling: the ``(index, value)`` witness pair.

        An empty ``box`` has no witness cell, so the answer is ``None``
        (MAX has no identity in a general domain — the empty-range rule
        of ``docs/TESTING.md``).
        """
        if check_query_box(box, self.shape):
            return None
        index = self.max_index(box, counter)
        return index, self.source[index]

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Protocol batch path — the vectorized shared descent."""
        return self.max_index_many(lows, highs, counter)

    def apply_updates(self, updates: Sequence[PointUpdate]) -> object:
        """Absorb point *deltas* via the §7 assignment machinery.

        Duplicate deltas to one cell accumulate first — the same merge
        the SUM-family partition performs — so the batch means the same
        thing whichever index family absorbs it.  The merged deltas are
        then converted to the assignments they imply (new value =
        pre-batch value + total delta) and the bottom-up repair of
        :func:`repro.core.max_update.apply_max_updates` runs once.

        Returns:
            The :class:`~repro.core.max_update.MaxUpdateStats` of the run.
        """
        from repro.core.max_update import MaxAssignment, apply_max_updates

        merged: dict[tuple[int, ...], object] = {}
        for update in updates:
            index = tuple(update.index)
            merged[index] = (
                merged[index] + update.delta
                if index in merged
                else update.delta
            )
        stats = apply_max_updates(
            self,
            [
                MaxAssignment(index, self.source[index] + delta)
                for index, delta in merged.items()
            ],
        )
        self.backend.flush()
        return stats

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalars for generic persistence."""
        state: dict[str, Any] = {"fanout": self.fanout, "source": self.source}
        for level in range(1, self.height + 1):
            state[f"values_{level}"] = self.values[level]
            state[f"positions_{level}"] = self.positions[level]
        return state

    @classmethod
    def from_state(
        cls, state: dict[str, Any], backend: ArrayBackend | None = None
    ) -> RangeMaxTree:
        """Rebuild from :meth:`state_dict` without recontracting."""
        backend = resolve_backend(backend)
        tree = cls.__new__(cls)
        tree.fanout = int(state["fanout"])
        tree.backend = backend
        tree.source = backend.materialize("source", state["source"])
        tree.shape = tuple(int(n) for n in tree.source.shape)
        tree.ndim = tree.source.ndim
        tree.values = [None]
        tree.positions = [None]
        level = 1
        while f"values_{level}" in state:
            tree.values.append(
                backend.materialize(f"values_{level}", state[f"values_{level}"])
            )
            tree.positions.append(
                backend.materialize(
                    f"positions_{level}", state[f"positions_{level}"]
                )
            )
            level += 1
        tree.height = len(tree.values) - 1
        return tree

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def max_index(
        self,
        box: Box,
        counter: AccessCounter = NULL_COUNTER,
        use_branch_and_bound: bool = True,
    ) -> tuple[int, ...]:
        """Index of a maximum cell inside ``box`` (``Max_index(R)``, §6.1.3).

        Args:
            box: Inclusive query region.
            counter: Charged per tree node and per raw cell read.
            use_branch_and_bound: Disable to measure the pruning's value
                (every boundary child is then recursed into).

        Returns:
            A d-tuple index of one cell attaining the maximum.
        """
        self._check_box(box)
        level, node = self._lowest_covering_node(box)
        if level == 0:
            counter.count_cube(1)
            return box.lo
        counter.count_tree(1)
        stored = self._node_point(level, node)
        if box.contains_point(stored):
            return stored
        counter.count_cube(1)  # read A[l] to seed current_max_index
        return self._get_max_index(
            level, node, box, box.lo, counter, use_branch_and_bound
        )

    def max_value(
        self,
        box: Box,
        counter: AccessCounter = NULL_COUNTER,
        use_branch_and_bound: bool = True,
    ) -> object:
        """The maximum value inside ``box``."""
        index = self.max_index(box, counter, use_branch_and_bound)
        return self.source[index]

    def max_range(
        self,
        bounds: Sequence[tuple[int, int]],
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[int, ...]:
        """Convenience wrapper taking ``(lo, hi)`` pairs per dimension."""
        return self.max_index(
            Box(tuple(lo for lo, _ in bounds), tuple(hi for _, hi in bounds)),
            counter,
        )

    def global_max_index(
        self, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[int, ...]:
        """Index of the maximum of the whole cube (one root access)."""
        return self.max_index(full_box(self.shape), counter)

    def max_index_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer ``K`` range-max queries with one shared tree descent.

        All searches walk the tree together (one vectorized wave per
        level) with the branch-and-bound prune applied across the whole
        frontier — see :func:`repro.query.batch.batch_max_index`.
        Maximum values are exact; tied argmax indices may differ from
        the scalar path's choice.

        Args:
            lows: ``(K, d)`` inclusive lower bounds (array-like, ints).
            highs: ``(K, d)`` inclusive upper bounds.
            counter: Charged per tree node and raw cell touched.

        Returns:
            ``(indices, values)``: ``(K, d)`` argmax coordinates and the
            ``(K,)`` maxima.
        """
        from repro.query.batch import batch_max_index, normalize_query_arrays

        lo, hi = normalize_query_arrays(lows, highs, self.shape)
        return batch_max_index(self, lo, hi, counter)

    # ------------------------------------------------------------------
    # Structure navigation (shared with the batch updater)
    # ------------------------------------------------------------------

    def level_shape(self, level: int) -> tuple[int, ...]:
        """Shape of the contracted array ``A_level``."""
        if level == 0:
            return self.shape
        vals = self.values[level]
        assert vals is not None
        return vals.shape

    def node_region(self, level: int, node: tuple[int, ...]) -> Box:
        """The leaf region ``C(x)`` covered by a node."""
        span = self.fanout**level
        lo = tuple(c * span for c in node)
        hi = tuple(
            min((c + 1) * span, n) - 1 for c, n in zip(node, self.shape)
        )
        return Box(lo, hi)

    def _node_point(self, level: int, node: tuple[int, ...]) -> tuple[int, ...]:
        """Stored max index of a node, as a d-tuple into ``A``."""
        pos_arr = self.positions[level]
        assert pos_arr is not None
        flat = int(pos_arr[node])
        return tuple(int(i) for i in np.unravel_index(flat, self.shape))

    def _lowest_covering_node(self, box: Box) -> tuple[int, tuple[int, ...]]:
        """Lowest-level node whose cover contains ``box`` (§6.1.2).

        In base-``b`` digits this is the longest common prefix of ``l``
        and ``h``; computed here as the smallest ``i`` with
        ``l_j // b^i == h_j // b^i`` in every dimension.
        """
        level = 0
        span = 1
        while level < self.height:
            if all(
                lo // span == hi // span
                for lo, hi in zip(box.lo, box.hi)
            ):
                break
            level += 1
            span *= self.fanout
        node = tuple(lo // span for lo in box.lo)
        return level, node

    def _iter_children(
        self, level: int, node: tuple[int, ...]
    ) -> product:
        """Child node indices (at ``level − 1``) of a node at ``level``."""
        child_shape = self.level_shape(level - 1)
        ranges = []
        for c, n in zip(node, child_shape):
            lo = c * self.fanout
            hi = min((c + 1) * self.fanout, n)
            ranges.append(range(lo, hi))
        return product(*ranges)

    # ------------------------------------------------------------------
    # Search recursion
    # ------------------------------------------------------------------

    def _get_max_index(
        self,
        level: int,
        node: tuple[int, ...],
        region: Box,
        current: tuple[int, ...],
        counter: AccessCounter,
        use_bnb: bool,
    ) -> tuple[int, ...]:
        """``get_max_index(x, R, current_max_index)`` of §6.1.3."""
        if level == 1:
            return self._scan_leaves(node, region, current, counter)
        vals = self.values[level - 1]
        assert vals is not None
        deferred: list[tuple[tuple[int, ...], object]] = []
        for child in self._iter_children(level, node):
            cover = self.node_region(level - 1, child)
            overlap = cover.intersect(region)
            if overlap.is_empty:
                continue  # external: never accessed
            counter.count_tree(1)
            child_value = vals[child]
            stored = self._node_point(level - 1, child)
            is_internal = region.contains_box(cover)
            if is_internal or region.contains_point(stored):
                # I(x, R) ∪ B_in(x, R): one access resolves the child.
                if child_value > self.source[current]:
                    current = stored
            else:
                deferred.append((child, child_value))
        for child, child_value in deferred:
            if use_bnb and child_value <= self.source[current]:
                continue  # branch-and-bound prune
            cover = self.node_region(level - 1, child)
            current = self._get_max_index(
                level - 1,
                child,
                region.intersect(cover),
                current,
                counter,
                use_bnb,
            )
        return current

    def _scan_leaves(
        self,
        node: tuple[int, ...],
        region: Box,
        current: tuple[int, ...],
        counter: AccessCounter,
    ) -> tuple[int, ...]:
        """Level-1 recursion base: leaf children are raw cube cells.

        Every leaf is either internal (inside ``R``) or external, so the
        in-region cells of the node's cover are scanned directly.
        """
        scan = self.node_region(1, node).intersect(region)
        if scan.is_empty:
            return current
        counter.count_cube(scan.volume)
        window = self.source[scan.slices()]
        local_flat = int(np.argmax(window))
        local = np.unravel_index(local_flat, window.shape)
        candidate = tuple(l + o for l, o in zip(scan.lo, local))
        if self.source[candidate] > self.source[current]:
            return candidate
        return current

    def _check_box(self, box: Box) -> None:
        # A max query needs a witness cell, so empty boxes stay errors
        # on the index-returning paths (``query`` short-circuits first).
        check_query_box(box, self.shape, allow_empty=False)
