"""Array allocation backends: in-memory numpy vs out-of-core memmap.

Every aggregate structure in this library is, at bottom, a handful of
dense numpy arrays — a prefix array ``P``, a retained cube ``A``, the
per-level arrays of a max tree.  The paper sizes those arrays at ``O(N)``
cells, and the ROADMAP's production target includes cubes larger than
RAM.  :class:`ArrayBackend` abstracts *where those arrays live*:

* :class:`MemoryBackend` — plain ``np.empty`` / copies; the default, and
  exactly the behaviour the structures had before this layer existed.
* :class:`MemmapBackend` — every array is an ``.npy`` file in a spill
  directory opened through ``np.lib.format.open_memmap``, so construction
  and queries stream through the OS page cache instead of requiring the
  whole array resident.

The two backends are *bit-identical* in results: construction writes the
same values through the same in-place kernels, only the allocation call
differs.  ``tests/index/test_backend.py`` asserts this for every
registered dense structure.

Allocation lifecycle
--------------------

A backend hands out arrays and tracks the *live* ones — those whose
spill files it still owns.  :meth:`ArrayBackend.release` retires every
live allocation at once: spill files are deleted and tracking is
dropped, so a superseded build (an adaptive hot-swap's old plan, an
aborted ingest) stops holding disk and handles.  Releasing never closes
a mapping that user code may still reference — closing the ``mmap``
under a live ``ndarray`` is a segfault, not an error — so the mapped
memory itself is reclaimed by ordinary refcounting the moment the last
array reference dies.  Callers that want a bounded lifetime they can
release as a unit take a :meth:`ArrayBackend.subscope`.

Zero-size allocations cannot be memory-mapped (``mmap`` of zero bytes is
an OS error), so :class:`MemmapBackend` hands out ordinary heap arrays
for them.  These *degenerate* arrays are part of the backend's contract:
they appear in ``describe()['degenerate']`` but never in
:attr:`~MemmapBackend.spill_files`, so any consumer that persists or
reopens a structure from its spill files alone (rather than from
``state_dict()``) must account for them explicitly.

A :class:`MemmapBackend`'s spill directory is owned by the caller (use a
``tempfile.TemporaryDirectory`` for scratch builds, a durable path for
servable ones — the files double as the persisted form); ``release()``
only ever deletes the files the backend itself created.
"""

from __future__ import annotations

import itertools
import os
import re
from pathlib import Path
from collections.abc import Sequence
from typing import Any

import numpy as np


class ArrayBackend:
    """Where a structure's defining arrays are allocated.

    Subclasses implement :meth:`empty`; :meth:`materialize` has a default
    in terms of it.  ``name`` is a human-readable tag ("prefix",
    "source", "values_2") used by file-backed backends to label spill
    files; backends may ignore it.
    """

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        """Allocate an uninitialized array of the given shape and dtype."""
        raise NotImplementedError

    def materialize(self, name: str, array: np.ndarray) -> np.ndarray:
        """A backend-owned copy of ``array`` (same shape, same dtype)."""
        array = np.asarray(array)
        out = self.empty(name, array.shape, array.dtype)
        out[...] = array
        return out

    def flush(self) -> None:
        """Push pending writes to stable storage (no-op in memory)."""

    def release(self) -> int:
        """Retire every live allocation; returns how many were released.

        File-backed backends delete their spill files and drop handle
        tracking; the mapped memory itself is freed when the last array
        reference dies (the mapping is never force-closed — see the
        module docstring).  In-memory backends have nothing to retire.
        The backend stays usable: later :meth:`empty` calls allocate
        fresh arrays.
        """
        return 0

    def subscope(self, tag: str) -> ArrayBackend:
        """A backend for one bounded allocation lifetime.

        Arrays a build allocates through a subscope can be retired as a
        unit with :meth:`release` without touching sibling builds that
        share the parent.  The default (in-memory) implementation has no
        tracked resources, so the backend itself is its own subscope.
        """
        return self

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary (used by ``Index.describe()``)."""
        return {"backend": type(self).__name__}


class MemoryBackend(ArrayBackend):
    """Arrays live on the process heap — the historical default."""

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        return np.empty(tuple(int(n) for n in shape), dtype=np.dtype(dtype))

    def materialize(self, name: str, array: np.ndarray) -> np.ndarray:
        return np.array(array, copy=True)


class MemmapBackend(ArrayBackend):
    """Arrays live as ``.npy`` files under a spill directory.

    Args:
        directory: Spill directory (created if missing).  The caller owns
            its lifetime; the files inside are standard ``.npy`` archives
            readable with ``np.load``.
        tag: Filename prefix, useful when several structures share one
            directory.

    Each allocation gets a fresh, sequence-numbered file, so rebuilding a
    structure never aliases a live array from the previous build; the
    rebuild's predecessor is reclaimed with :meth:`release` (on its own
    :meth:`subscope`) rather than by accumulating forever.
    """

    def __init__(self, directory: str | os.PathLike[str], tag: str = "repro") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.tag = str(tag)
        self._sequence = itertools.count()
        #: Live allocations only: ``release()`` empties this, so flushes
        #: and spill accounting never touch superseded builds.
        self._live: dict[Path, np.memmap] = {}
        #: Names of zero-size allocations that fell back to the heap —
        #: invisible to ``spill_files`` by necessity, reported by
        #: ``describe()`` by contract.
        self._degenerate: list[str] = []
        #: Subscope directories this instance has handed out, so two
        #: children with the same tag never share (and overwrite) one
        #: spill directory.
        self._children: set[Path] = set()

    def _path_for(self, name: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "array"
        return self.directory / (
            f"{self.tag}-{next(self._sequence):05d}-{safe}.npy"
        )

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        shape = tuple(int(n) for n in shape)
        if int(np.prod(shape)) == 0:
            # mmap cannot map zero bytes; a heap array is equivalent here
            # but has no spill file — tracked so describe() reports it.
            self._degenerate.append(str(name))
            return np.empty(shape, dtype=np.dtype(dtype))
        path = self._path_for(name)
        array = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=shape
        )
        self._live[path] = array
        return array

    def flush(self) -> None:
        """Sync every *live* memmap's dirty pages to its spill file.

        Structures call this at the end of ``apply_updates``: in-place
        deltas otherwise sit in the page cache only, so reading a spill
        file by path (``save_index``, another process) can observe the
        pre-update bytes.  Released arrays are not flushed — their files
        are gone, and re-flushing every array ever allocated made each
        update batch O(total builds) instead of O(live arrays).
        """
        for array in self._live.values():
            array.flush()

    def release(self) -> int:
        """Delete every live spill file and drop its handle tracking.

        Safe while the arrays are still mapped (POSIX unlink); the
        mapping's memory is returned when the last array reference dies.
        Degenerate (zero-size, heap-backed) allocations are retired from
        the ``describe()`` accounting at the same time.  Returns the
        number of spill files released.
        """
        released = len(self._live)
        for path in self._live:
            try:
                path.unlink()
            except FileNotFoundError:
                pass
        self._live.clear()
        self._degenerate.clear()
        return released

    def subscope(self, tag: str) -> MemmapBackend:
        """A child backend spilling into ``directory/tag``.

        Releasing the child deletes only the child's files; the parent's
        live arrays are untouched.  Used by the serving layer to give
        each adaptive plan build its own reclaimable spill scope.  Asking
        the same parent for the same tag twice yields *distinct*
        directories (a numeric suffix disambiguates) — each child has its
        own filename sequence, so sharing a directory would let a second
        build overwrite the first's live files.  Disambiguation consults
        the *disk* as well as this instance's bookkeeping: a second
        backend over the same durable directory (or a process restart)
        must not hand out a child whose directory already holds spill
        files — its fresh filename sequence would silently overwrite
        them, possibly the persisted form a manifest is serving.
        """
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", str(tag)) or "scope"
        child = self.directory / safe
        suffix = 0
        while child in self._children or child.exists():
            suffix += 1
            child = self.directory / f"{safe}-{suffix}"
        self._children.add(child)
        return MemmapBackend(child, tag=self.tag)

    @property
    def spill_files(self) -> tuple[Path, ...]:
        """Paths of every *live* array file (released files are gone)."""
        return tuple(self._live)

    @property
    def live_arrays(self) -> int:
        """How many handed-out arrays this backend still tracks."""
        return len(self._live)

    @property
    def spilled_bytes(self) -> int:
        """Total bytes currently on disk across live spill files."""
        return sum(p.stat().st_size for p in self._live if p.exists())

    def describe(self) -> dict[str, Any]:
        return {
            "backend": type(self).__name__,
            "directory": str(self.directory),
            "files": len(self._live),
            "degenerate": len(self._degenerate),
        }


class AdoptingBackend(ArrayBackend):
    """Wrap a backend so :meth:`materialize` adopts instead of copying.

    Structure constructors call ``backend.materialize("source", cube)``
    to take a defensive copy of their input.  When the caller *already
    owns* the array — a streaming-ingest accumulator that just finished
    its one-pass build, a spill file being reopened by
    :func:`repro.io.open_index` — that copy would double the footprint
    (and, out of core, the disk) for nothing.  An adopting backend hands
    the array straight through, records it for :meth:`flush` when it is
    file-backed, and delegates every fresh allocation to the wrapped
    backend.

    Only use it when handing a structure arrays nobody else will mutate:
    adoption deliberately removes the copy that normally isolates the
    structure from its caller.
    """

    def __init__(self, inner: ArrayBackend) -> None:
        self.inner = inner
        self._adopted: list[np.ndarray] = []

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        return self.inner.empty(name, shape, dtype)

    def materialize(self, name: str, array: np.ndarray) -> np.ndarray:
        adopted = np.asarray(array)
        if _backing_memmap(adopted) is not None:
            self._adopted.append(adopted)
        return adopted

    def flush(self) -> None:
        for array in self._adopted:
            backing = _backing_memmap(array)
            if backing is not None:
                backing.flush()
        self.inner.flush()

    def release(self) -> int:
        self._adopted.clear()
        return self.inner.release()

    def subscope(self, tag: str) -> ArrayBackend:
        return self.inner.subscope(tag)

    def describe(self) -> dict[str, Any]:
        description = dict(self.inner.describe())
        description["adopted"] = len(self._adopted)
        return description


def _backing_memmap(array: np.ndarray | None) -> np.memmap | None:
    """The file-backed memmap an array views, if any.

    Walks the ``.base`` chain: ``np.asarray(memmap)`` and slicing both
    return plain ``ndarray`` views whose buffer is still the mapped
    file.  Returns the underlying :class:`np.memmap` (the object that
    knows its ``filename`` and can ``flush()``), or ``None`` for heap
    arrays.
    """
    seen: object = array
    while isinstance(seen, np.ndarray):
        if isinstance(seen, np.memmap) and getattr(seen, "filename", None):
            return seen
        seen = seen.base
    return None


#: Shared default backend — heap allocation, the pre-registry behaviour.
MEMORY_BACKEND = MemoryBackend()


def resolve_backend(backend: ArrayBackend | None) -> ArrayBackend:
    """``None`` means the shared in-memory default."""
    return MEMORY_BACKEND if backend is None else backend
