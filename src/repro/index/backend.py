"""Array allocation backends: in-memory numpy vs out-of-core memmap.

Every aggregate structure in this library is, at bottom, a handful of
dense numpy arrays — a prefix array ``P``, a retained cube ``A``, the
per-level arrays of a max tree.  The paper sizes those arrays at ``O(N)``
cells, and the ROADMAP's production target includes cubes larger than
RAM.  :class:`ArrayBackend` abstracts *where those arrays live*:

* :class:`MemoryBackend` — plain ``np.empty`` / copies; the default, and
  exactly the behaviour the structures had before this layer existed.
* :class:`MemmapBackend` — every array is an ``.npy`` file in a spill
  directory opened through ``np.lib.format.open_memmap``, so construction
  and queries stream through the OS page cache instead of requiring the
  whole array resident.

The two backends are *bit-identical* in results: construction writes the
same values through the same in-place kernels, only the allocation call
differs.  ``tests/index/test_backend.py`` asserts this for every
registered dense structure.

Backends hand out arrays; they do not track or free them.  A
:class:`MemmapBackend`'s spill directory is owned by the caller (use a
``tempfile.TemporaryDirectory`` for scratch builds, a durable path for
servable ones — the files double as the persisted form).
"""

from __future__ import annotations

import itertools
import os
import re
from pathlib import Path
from collections.abc import Sequence
from typing import Any

import numpy as np


class ArrayBackend:
    """Where a structure's defining arrays are allocated.

    Subclasses implement :meth:`empty`; :meth:`materialize` has a default
    in terms of it.  ``name`` is a human-readable tag ("prefix",
    "source", "values_2") used by file-backed backends to label spill
    files; backends may ignore it.
    """

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        """Allocate an uninitialized array of the given shape and dtype."""
        raise NotImplementedError

    def materialize(self, name: str, array: np.ndarray) -> np.ndarray:
        """A backend-owned copy of ``array`` (same shape, same dtype)."""
        array = np.asarray(array)
        out = self.empty(name, array.shape, array.dtype)
        out[...] = array
        return out

    def flush(self) -> None:
        """Push pending writes to stable storage (no-op in memory)."""

    def describe(self) -> dict[str, Any]:
        """A plain-dict summary (used by ``Index.describe()``)."""
        return {"backend": type(self).__name__}


class MemoryBackend(ArrayBackend):
    """Arrays live on the process heap — the historical default."""

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        return np.empty(tuple(int(n) for n in shape), dtype=np.dtype(dtype))

    def materialize(self, name: str, array: np.ndarray) -> np.ndarray:
        return np.array(array, copy=True)


class MemmapBackend(ArrayBackend):
    """Arrays live as ``.npy`` files under a spill directory.

    Args:
        directory: Spill directory (created if missing).  The caller owns
            its lifetime; the files inside are standard ``.npy`` archives
            readable with ``np.load``.
        tag: Filename prefix, useful when several structures share one
            directory.

    Each allocation gets a fresh, sequence-numbered file, so rebuilding a
    structure never aliases a live array from the previous build.
    """

    def __init__(self, directory: str | os.PathLike[str], tag: str = "repro") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.tag = str(tag)
        self._sequence = itertools.count()
        self._allocated: list[Path] = []
        self._arrays: list[np.memmap] = []

    def _path_for(self, name: str) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "array"
        return self.directory / (
            f"{self.tag}-{next(self._sequence):05d}-{safe}.npy"
        )

    def empty(
        self, name: str, shape: Sequence[int], dtype: object
    ) -> np.ndarray:
        shape = tuple(int(n) for n in shape)
        if int(np.prod(shape)) == 0:
            # mmap cannot map zero bytes; a heap array is equivalent here.
            return np.empty(shape, dtype=np.dtype(dtype))
        path = self._path_for(name)
        self._allocated.append(path)
        array = np.lib.format.open_memmap(
            path, mode="w+", dtype=np.dtype(dtype), shape=shape
        )
        self._arrays.append(array)
        return array

    def flush(self) -> None:
        """Sync every live memmap's dirty pages to its spill file.

        Structures call this at the end of ``apply_updates``: in-place
        deltas otherwise sit in the page cache only, so reading a spill
        file by path (``save_index``, another process) can observe the
        pre-update bytes.
        """
        for array in self._arrays:
            array.flush()

    @property
    def spill_files(self) -> tuple[Path, ...]:
        """Paths of every array file this backend has handed out."""
        return tuple(self._allocated)

    @property
    def spilled_bytes(self) -> int:
        """Total bytes currently on disk across spill files."""
        return sum(p.stat().st_size for p in self._allocated if p.exists())

    def describe(self) -> dict[str, Any]:
        return {
            "backend": type(self).__name__,
            "directory": str(self.directory),
            "files": len(self._allocated),
        }


#: Shared default backend — heap allocation, the pre-registry behaviour.
MEMORY_BACKEND = MemoryBackend()


def resolve_backend(backend: ArrayBackend | None) -> ArrayBackend:
    """``None`` means the shared in-memory default."""
    return MEMORY_BACKEND if backend is None else backend
