"""The index layer: protocols, the structure registry, array backends.

This package is the contract that makes the paper's structure family
interchangeable (see ``docs/ARCHITECTURE.md``):

* :mod:`repro.index.protocol` — :class:`RangeSumIndex` /
  :class:`RangeMaxIndex` protocols, the default-providing mixins, and
  the :class:`InstrumentedIndex` counter wrapper;
* :mod:`repro.index.registry` — ``@register_index`` and
  :func:`create_index`, the single naming convention every consumer
  shares;
* :mod:`repro.index.backend` — in-memory vs memmap array allocation,
  threaded through structure construction for out-of-core builds.
"""

from repro.index.backend import (
    MEMORY_BACKEND,
    AdoptingBackend,
    ArrayBackend,
    MemmapBackend,
    MemoryBackend,
    resolve_backend,
)
from repro.index.protocol import (
    InstrumentedIndex,
    RangeMaxIndex,
    RangeMaxIndexMixin,
    RangeSumIndex,
    RangeSumIndexMixin,
)
from repro.index.registry import (
    IndexInfo,
    IndexSpec,
    available_indexes,
    create_index,
    get_index_info,
    index_info_for,
    register_index,
)

__all__ = [
    "AdoptingBackend",
    "ArrayBackend",
    "IndexInfo",
    "IndexSpec",
    "InstrumentedIndex",
    "MEMORY_BACKEND",
    "MemmapBackend",
    "MemoryBackend",
    "RangeMaxIndex",
    "RangeMaxIndexMixin",
    "RangeSumIndex",
    "RangeSumIndexMixin",
    "available_indexes",
    "create_index",
    "get_index_info",
    "index_info_for",
    "register_index",
    "resolve_backend",
]
