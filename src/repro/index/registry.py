"""Name → factory registry for every aggregate structure.

Before this layer, four private naming conventions coexisted: the engine
hardcoded one ``if/elif`` per structure, the §9 advisor and cost model
referred to structures by ad-hoc strings, ``io.py`` had bespoke
save/load per class, and the benchmarks instantiated classes directly.
The registry replaces all four: a structure is registered once, under
one canonical name, with its aggregate kind and capabilities, and every
consumer — :class:`~repro.query.engine.RangeQueryEngine`, the §9
materializer, generic persistence, benchmarks, user code — instantiates
it through :func:`create_index`.

Registering a custom index::

    from repro.index import register_index, RangeSumIndexMixin

    @register_index("my_sketch", kind="sum", persistable=False)
    class SketchSum(RangeSumIndexMixin):
        def __init__(self, cube, **params): ...
        def range_sum(self, box, counter=NULL_COUNTER): ...
        def apply_updates(self, updates): ...
        def memory_cells(self): ...

    engine = RangeQueryEngine(cube, sum_index="my_sketch")

Built-in structures register themselves at import time; the lazy loader
in :func:`_ensure_builtin_indexes` makes the registry self-populating
even when ``repro.index`` is imported before ``repro.core`` /
``repro.sparse``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable
from typing import Any

from repro.index.backend import ArrayBackend

#: Kinds an index may register under.
INDEX_KINDS = ("sum", "max")


@dataclass(frozen=True)
class FuzzProfile:
    """What the differential harness may throw at a registered index.

    Declared at registration time so :mod:`repro.verify` can generate
    scenarios for *every* index without per-structure special cases: the
    profile states which dtypes and operators the structure supports,
    the dimensionalities it accepts, and how to draw valid construction
    parameters for a given shape.

    Attributes:
        dtypes: Numpy dtype names the structure accepts as cube dtype.
        operators: Operator names (see :mod:`repro.core.operators`) the
            structure can be built with; empty for max-kind indexes,
            which have no operator parameter.  The scenario generator
            additionally filters by dtype (``xor`` needs integers,
            ``product`` a zero-free float domain).
        min_ndim: Smallest cube dimensionality supported.
        max_ndim: Largest cube dimensionality worth fuzzing.
        supports_updates: Whether ``apply_updates`` is implemented.
        sample_params: Optional ``(rng, shape) -> dict`` drawing valid
            construction parameters (block sizes, prefix dims, fanouts)
            for a cube of ``shape``; ``None`` means no parameters.
    """

    dtypes: tuple[str, ...]
    operators: tuple[str, ...] = ("sum",)
    min_ndim: int = 1
    max_ndim: int = 5
    supports_updates: bool = True
    sample_params: Callable[..., dict[str, Any]] | None = None


@dataclass(frozen=True)
class IndexInfo:
    """One registry entry: the canonical name and how to build it."""

    name: str
    kind: str
    cls: type[Any]
    factory: Callable[..., object]
    persistable: bool
    accepts_backend: bool
    sparse_input: bool
    description: str = field(default="", compare=False)
    fuzz_profile: FuzzProfile | None = field(default=None, compare=False)


_REGISTRY: dict[str, IndexInfo] = {}
_BUILTINS_LOADED = False


def _ensure_builtin_indexes() -> None:
    """Import the modules whose classes self-register (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported for their ``@register_index`` side effects.
    import repro.core  # noqa: F401
    import repro.sparse  # noqa: F401


def register_index(
    name: str,
    *,
    kind: str,
    persistable: bool = True,
    sparse_input: bool = False,
    factory: Callable[..., object] | None = None,
    description: str = "",
    fuzz_profile: FuzzProfile | None = None,
) -> Callable[[type[Any]], type[Any]]:
    """Class decorator adding an index to the registry.

    Args:
        name: Canonical registry name (``snake_case``).
        kind: ``"sum"`` or ``"max"`` — which aggregate family it serves.
        persistable: Whether :func:`repro.io.save_index` supports it
            (structures built on pointer-heavy secondary indexes opt out).
        sparse_input: Whether the factory takes a
            :class:`~repro.sparse.SparseCube` instead of an ndarray.
        factory: Override the constructor as the build callable.
        description: One-line summary; defaults to the class docstring's
            first line.
        fuzz_profile: Capabilities advertised to the differential
            harness (:mod:`repro.verify`); indexes without one are
            skipped by the fuzzer but still usable everywhere else.
    """
    if kind not in INDEX_KINDS:
        raise ValueError(f"kind must be one of {INDEX_KINDS}, got {kind!r}")

    def decorator(cls: type[Any]) -> type[Any]:
        if name in _REGISTRY and _REGISTRY[name].cls is not cls:
            raise ValueError(
                f"index name {name!r} already registered by "
                f"{_REGISTRY[name].cls.__name__}"
            )
        build = factory or cls
        try:
            signature = inspect.signature(build)
            accepts_backend = "backend" in signature.parameters
        except (TypeError, ValueError):  # pragma: no cover - C callables
            accepts_backend = False
        summary = description
        if not summary and cls.__doc__:
            summary = cls.__doc__.strip().splitlines()[0]
        _REGISTRY[name] = IndexInfo(
            name=name,
            kind=kind,
            cls=cls,
            factory=build,
            persistable=persistable,
            accepts_backend=accepts_backend,
            sparse_input=sparse_input,
            description=summary,
            fuzz_profile=fuzz_profile,
        )
        cls.index_name = name
        return cls

    return decorator


def get_index_info(name: str) -> IndexInfo:
    """The registry entry for ``name`` (loading built-ins if needed).

    Raises:
        KeyError: Unknown name, with the known names in the message.
    """
    _ensure_builtin_indexes()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown index {name!r}; registered: {known}"
        ) from None


def create_index(
    name: str,
    cube: object,
    *,
    backend: ArrayBackend | None = None,
    **params: object,
) -> object:
    """Build a registered index over ``cube``.

    Args:
        name: Registry name (see :func:`available_indexes`).
        cube: The data cube — an ndarray, or a ``SparseCube`` for entries
            registered with ``sparse_input=True``.
        backend: Array backend, forwarded when the structure supports
            out-of-core allocation (silently ignored otherwise — sparse
            structures allocate through their own node stores).
        **params: Structure-specific construction parameters
            (``block_size``, ``fanout``, ``prefix_dims``...).

    Returns:
        The built structure (satisfying the kind's protocol).
    """
    info = get_index_info(name)
    if backend is not None and info.accepts_backend:
        params = {**params, "backend": backend}
    return info.factory(cube, **params)


def index_info_for(obj: object) -> IndexInfo:
    """The registry entry matching an instance or class.

    Raises:
        KeyError: When the class was never registered.
    """
    _ensure_builtin_indexes()
    cls = obj if isinstance(obj, type) else type(obj)
    name = getattr(cls, "index_name", None)
    if name is not None and name in _REGISTRY and _REGISTRY[name].cls is cls:
        return _REGISTRY[name]
    for info in _REGISTRY.values():
        if info.cls is cls:
            return info
    raise KeyError(f"{cls.__name__} is not a registered index")


def available_indexes(
    kind: str | None = None, persistable: bool | None = None
) -> tuple[str, ...]:
    """Registered names, optionally filtered by kind / persistability."""
    _ensure_builtin_indexes()
    names: Iterable[str] = sorted(_REGISTRY)
    if kind is not None:
        names = [n for n in names if _REGISTRY[n].kind == kind]
    if persistable is not None:
        names = [
            n for n in names if _REGISTRY[n].persistable == persistable
        ]
    return tuple(names)


@dataclass(frozen=True)
class IndexSpec:
    """A buildable ``(name, params)`` pair — the planner's currency.

    The engine, the §9 advisor, and user configuration all describe a
    physical design as a list of these; :meth:`build` turns one into a
    live structure through the registry.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, name: str, **params: object) -> IndexSpec:
        """Convenience constructor: ``IndexSpec.of("blocked", b=8)``."""
        return cls(name, tuple(sorted(params.items())))

    @property
    def kind(self) -> str:
        """The registered aggregate kind of the named index."""
        return get_index_info(self.name).kind

    def as_dict(self) -> dict[str, Any]:
        """The params as a plain dict."""
        return dict(self.params)

    def build(
        self, cube: object, backend: ArrayBackend | None = None
    ) -> object:
        """Instantiate the spec over a cube via :func:`create_index`."""
        return create_index(
            self.name, cube, backend=backend, **self.as_dict()
        )

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.name}({inner})"
