"""The RangeSumIndex / RangeMaxIndex protocols and their default mixins.

The paper presents its structures as one family — the basic prefix sum
(§3), the blocked variant (§4), the partial-dimension designs (§9.1), and
the b-ary max tree (§6) all trade space, query cost, and update cost over
the same cube.  This module makes that family a *contract*:

* :class:`RangeSumIndex` — anything that answers ``Sum(box)``-style
  aggregates: ``query``, ``query_many``, ``apply_updates``,
  ``memory_cells``, ``describe`` (plus a ``build`` classmethod).
* :class:`RangeMaxIndex` — the MAX side of the family: ``query`` returns
  an ``(index, value)`` witness pair.

Concrete structures inherit the matching mixin
(:class:`RangeSumIndexMixin` / :class:`RangeMaxIndexMixin`), which
supplies protocol defaults in terms of the structure's existing scalar
entry points.  In particular ``query_many`` delegates to ``sum_many``,
and the mixin's ``sum_many`` default *loops the scalar path* — so every
structure gains batch support for free, and the vectorized kernels of
:mod:`repro.query.batch` become per-class overrides rather than special
cases the engine must know about.

:class:`InstrumentedIndex` is the access-counter wrapper: it binds an
:class:`~repro.instrumentation.AccessCounter` to an index once, so
callers like :class:`~repro.query.engine.RangeQueryEngine` thread
instrumentation through a uniform protocol surface instead of forwarding
``counter=`` arguments into structure-specific signatures.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

import numpy as np

from repro._util import Box
from repro.instrumentation import NULL_COUNTER, AccessCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.batch_update import PointUpdate


@runtime_checkable
class RangeSumIndex(Protocol):
    """Contract for range-SUM (COUNT/AVERAGE via derived cubes) indexes."""

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """The aggregate of ``box`` (a scalar)."""

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Aggregates for ``K`` boxes given as ``(K, d)`` bound arrays."""

    def apply_updates(self, updates: Sequence[PointUpdate]) -> object:
        """Absorb a batch of point deltas into the structure."""

    def memory_cells(self) -> int:
        """Cells of auxiliary storage held (the paper's space measure)."""

    def describe(self) -> dict[str, Any]:
        """A plain-dict self-description (name, params, space)."""


@runtime_checkable
class RangeMaxIndex(Protocol):
    """Contract for range-MAX (MIN via negation) indexes."""

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """``(index, value)`` of a maximum cell in ``box``."""

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` arrays for ``K`` boxes."""

    def apply_updates(self, updates: Sequence[PointUpdate]) -> object:
        """Absorb a batch of point deltas into the structure."""

    def memory_cells(self) -> int:
        """Cells/nodes of auxiliary storage held."""

    def describe(self) -> dict[str, Any]:
        """A plain-dict self-description (name, params, space)."""


class _IndexBase:
    """Shared protocol defaults (build / describe / persistence hooks)."""

    #: Set by ``@register_index``; falls back to the class name.
    index_name: str | None = None
    #: "sum" or "max" — set by the concrete mixin below.
    index_kind: str = "index"
    #: Per-index execution-backend override (a registry name or a live
    #: :class:`~repro.kernels.ExecutionKernel`).  ``None`` defers to
    #: ``$REPRO_KERNEL`` and then the ``"numpy"`` default — see
    #: :func:`repro.kernels.resolve_kernel` for the full precedence.
    kernel: object | None = None

    @classmethod
    def build(cls, cube: object, **params: object) -> _IndexBase:
        """Construct an index over ``cube`` (the protocol's factory)."""
        return cls(cube, **params)

    def index_params(self) -> dict[str, Any]:
        """Construction parameters worth reporting (and persisting)."""
        return {}

    def apply_updates(self, updates: object) -> object:
        """Protocol default: the structure is read-only once built."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support batch updates; "
            "rebuild the structure instead"
        )

    def memory_cells(self) -> int:
        """Cells of auxiliary storage held (structures override)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not report its storage"
        )

    def describe(self) -> dict[str, Any]:
        info: dict[str, Any] = {
            "index": self.index_name or type(self).__name__,
            "class": type(self).__name__,
            "kind": self.index_kind,
            "shape": tuple(int(n) for n in self.shape),
            "memory_cells": int(self.memory_cells()),
        }
        params = self.index_params()
        if params:
            info["params"] = params
        backend = getattr(self, "backend", None)
        if backend is not None:
            info.update(backend.describe())
        return info

    # -- persistence hooks (see repro.io.save_index / load_index) -------

    def state_dict(self) -> dict[str, Any]:
        """Defining arrays + scalar params, enough to reconstruct."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support generic persistence"
        )

    @classmethod
    def from_state(cls, state: dict[str, Any], backend: object = None) -> _IndexBase:
        """Rebuild from :meth:`state_dict` output without recomputation."""
        raise NotImplementedError(
            f"{cls.__name__} does not support generic persistence"
        )


class RangeSumIndexMixin(_IndexBase):
    """Protocol defaults for SUM-family structures.

    Assumes the concrete class provides ``range_sum(box, counter)`` and a
    ``shape`` attribute.  ``sum_many`` here is the *protocol default* —
    a scalar loop — which vectorized structures override; ``query_many``
    always routes through ``sum_many`` so overrides are picked up.
    """

    index_kind = "sum"

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """Protocol spelling of :meth:`range_sum`."""
        return self.range_sum(box, counter)

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Batch entry point; uses the class's best ``sum_many``."""
        return self.sum_many(lows, highs, counter)

    def sum_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Default batch path: the scalar query per row.

        Structures with a vectorized kernel override this; everything
        else gains a correct (if unvectorized) batch API for free.
        Empty rows are legal and come back as the scalar path answers
        them (the operator identity).

        Validation is hoisted: the batch is checked once by
        ``normalize_query_arrays``, and structures that expose a
        ``range_sum_unchecked(box, counter)`` hook skip their per-query
        ``check_query_box`` entirely (empty rows short-circuit to the
        operator identity here).  Structures without the hook fall back
        to ``range_sum`` row by row, which re-validates.
        """
        from repro.query.batch import normalize_query_arrays

        lo, hi = normalize_query_arrays(
            lows, highs, self.shape, allow_empty=True
        )
        unchecked = getattr(self, "range_sum_unchecked", None)
        if unchecked is None:
            results = [
                self.range_sum(
                    Box(tuple(int(x) for x in l), tuple(int(x) for x in h)),
                    counter,
                )
                for l, h in zip(lo, hi)
            ]
            return np.asarray(results)
        empty = np.any(hi < lo, axis=1)
        operator = getattr(self, "operator", None)
        # Sparse SUM structures don't carry an operator object; their
        # empty-range answer is the additive identity.
        identity = operator.identity if operator is not None else 0
        results = [
            identity
            if empty[k]
            else unchecked(
                Box(
                    tuple(int(x) for x in lo[k]),
                    tuple(int(x) for x in hi[k]),
                ),
                counter,
            )
            for k in range(lo.shape[0])
        ]
        return np.asarray(results)


class RangeMaxIndexMixin(_IndexBase):
    """Protocol defaults for MAX-family structures.

    Assumes the concrete class provides ``query(box, counter)`` returning
    an ``(index, value)`` pair (or ``None`` for an all-empty sparse
    region) and a ``shape`` attribute.
    """

    index_kind = "max"

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Default batch path: the scalar witness search per row."""
        from repro.query.batch import normalize_query_arrays

        lo, hi = normalize_query_arrays(lows, highs, self.shape)
        count, ndim = lo.shape
        indices = np.empty((count, ndim), dtype=np.int64)
        values: list[object] = []
        for k in range(count):
            box = Box(
                tuple(int(x) for x in lo[k]), tuple(int(x) for x in hi[k])
            )
            hit = self.query(box, counter)
            if hit is None:
                raise ValueError(
                    f"query {k} covers no non-empty cell; the batch max "
                    "path needs a witness per query"
                )
            index, value = hit
            indices[k] = index
            values.append(value)
        return indices, np.asarray(values)


def values_match(actual: object, expected: object) -> bool:
    """Exact agreement between an index answer and an oracle answer.

    ``None`` only matches ``None`` (the MAX-over-empty answer); anything
    else is compared numerically and element-wise, so bool/int/float
    representations of the same aggregate agree.  The differential
    harness keeps every scenario value exactly representable, so no
    tolerance is ever applied.
    """
    if actual is None or expected is None:
        return actual is None and expected is None
    a = np.asarray(actual)
    b = np.asarray(expected)
    if a.shape != b.shape:
        return False
    return bool(np.all(a == b))


class InstrumentedIndex:
    """An index with an :class:`AccessCounter` bound to every call.

    The engine used to forward ``counter=`` into each structure-specific
    method; this wrapper moves that threading into the protocol layer:
    construct once with the counter that should observe the index, and
    every ``query`` / ``query_many`` charges it.  A counter passed
    explicitly at call time takes precedence (per-query measurement),
    otherwise the bound counter is used.

    Any attribute the protocol does not cover (``source``, ``operator``,
    ``block_size``...) forwards to the wrapped index, so the wrapper is
    transparent to code that knows the concrete type.
    """

    __slots__ = ("index", "counter")

    def __init__(
        self, index: object, counter: AccessCounter = NULL_COUNTER
    ) -> None:
        self.index = index
        self.counter = counter

    def _pick(self, counter: AccessCounter) -> AccessCounter:
        if counter is NULL_COUNTER or counter is None:
            return self.counter
        return counter

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        return self.index.query(box, self._pick(counter))

    def query_many(
        self,
        lows: object,
        highs: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        return self.index.query_many(lows, highs, self._pick(counter))

    def apply_updates(self, updates: object) -> object:
        return self.index.apply_updates(updates)

    def compare_query(
        self,
        box: Box,
        expected: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> dict | None:
        """Run ``query`` and diff the answer against an oracle's.

        The differential harness's scalar probe for SUM-family indexes
        (MAX witnesses need semantic validation — any cell attaining the
        maximum is correct — which the harness does itself).

        Returns:
            ``None`` on exact agreement, otherwise a divergence record
            with the box, the expected and the actual answer.
        """
        actual = self.query(box, self._pick(counter))
        if values_match(actual, expected):
            return None
        return {
            "kind": "query",
            "box": [list(box.lo), list(box.hi)],
            "expected": repr(expected),
            "actual": repr(actual),
        }

    def compare_query_many(
        self,
        lows: object,
        highs: object,
        expected: object,
        counter: AccessCounter = NULL_COUNTER,
    ) -> dict | None:
        """Run ``query_many`` and diff each row against oracle answers.

        Returns:
            ``None`` on exact agreement, otherwise a divergence record
            naming the first mismatching row.
        """
        actual = np.asarray(
            self.query_many(lows, highs, self._pick(counter))
        )
        wanted = np.asarray(expected)
        lo = np.asarray(lows)
        hi = np.asarray(highs)
        if actual.shape != wanted.shape:
            return {
                "kind": "query_many",
                "row": None,
                "expected": f"shape {wanted.shape}",
                "actual": f"shape {actual.shape}",
            }
        for k in range(wanted.shape[0]):
            if not values_match(actual[k], wanted[k]):
                return {
                    "kind": "query_many",
                    "row": int(k),
                    "box": [list(map(int, lo[k])), list(map(int, hi[k]))],
                    "expected": repr(wanted[k]),
                    "actual": repr(actual[k]),
                }
        return None

    def memory_cells(self) -> int:
        return self.index.memory_cells()

    def describe(self) -> dict[str, Any]:
        return self.index.describe()

    def __getattr__(self, name: str) -> object:
        return getattr(self.index, name)

    def __repr__(self) -> str:
        return f"InstrumentedIndex({self.index!r})"
