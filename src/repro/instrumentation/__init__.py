"""Access-count instrumentation (the paper's response-time proxy)."""

from repro.instrumentation.counters import AccessCounter, NULL_COUNTER

__all__ = ["AccessCounter", "NULL_COUNTER"]
