"""Counters for the element-access cost proxy used throughout the paper.

Section 8 of the paper: *"We use the number of elements required to answer
the query as a proxy for response time."*  Every query structure in this
library accepts an :class:`AccessCounter` and charges one unit per element
it reads:

* ``cube_cells`` — reads of the raw data cube ``A``;
* ``prefix_cells`` — reads of a prefix-sum array ``P`` (basic or blocked);
* ``tree_nodes`` — reads of hierarchical-tree nodes (max tree, tree-sum);
* ``index_nodes`` — reads of secondary index nodes (B-tree, R*-tree).

Benchmarks compare these counts directly against the paper's analytic cost
formulas (e.g. ``2^d + S·F(b)`` for the blocked prefix-sum method).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class AccessCounter:
    """Mutable tally of element accesses, grouped by storage structure.

    Increments are serialized through an internal lock: the ``threaded``
    execution kernel charges one shared counter from several worker
    threads at once, and the plain ``int`` read-modify-write of ``+=``
    would drop charges under that interleaving.  The lock is per-counter
    and uncontended on the serial paths.
    """

    cube_cells: int = 0
    prefix_cells: int = 0
    tree_nodes: int = 0
    index_nodes: int = 0
    enabled: bool = field(default=True, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def count_cube(self, cells: int = 1) -> None:
        """Charge ``cells`` reads of the raw data cube ``A``."""
        if self.enabled:
            with self._lock:
                self.cube_cells += cells

    def count_prefix(self, cells: int = 1) -> None:
        """Charge ``cells`` reads of a prefix-sum array ``P``."""
        if self.enabled:
            with self._lock:
                self.prefix_cells += cells

    def count_tree(self, nodes: int = 1) -> None:
        """Charge ``nodes`` reads of hierarchical-tree nodes."""
        if self.enabled:
            with self._lock:
                self.tree_nodes += nodes

    def count_index(self, nodes: int = 1) -> None:
        """Charge ``nodes`` reads of secondary-index nodes."""
        if self.enabled:
            with self._lock:
                self.index_nodes += nodes

    @property
    def total(self) -> int:
        """Total elements accessed, all structures combined."""
        return (
            self.cube_cells
            + self.prefix_cells
            + self.tree_nodes
            + self.index_nodes
        )

    def reset(self) -> None:
        """Zero every tally."""
        with self._lock:
            self.cube_cells = 0
            self.prefix_cells = 0
            self.tree_nodes = 0
            self.index_nodes = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the current tallies (for reporting)."""
        with self._lock:
            return {
                "cube_cells": self.cube_cells,
                "prefix_cells": self.prefix_cells,
                "tree_nodes": self.tree_nodes,
                "index_nodes": self.index_nodes,
                "total": self.total,
            }


class _NullCounter(AccessCounter):
    """A counter that ignores every charge (zero-overhead default)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def count_cube(self, cells: int = 1) -> None:  # noqa: D102
        pass

    def count_prefix(self, cells: int = 1) -> None:  # noqa: D102
        pass

    def count_tree(self, nodes: int = 1) -> None:  # noqa: D102
        pass

    def count_index(self, nodes: int = 1) -> None:  # noqa: D102
        pass


#: Shared do-nothing counter used when the caller does not ask for counts.
NULL_COUNTER = _NullCounter()
