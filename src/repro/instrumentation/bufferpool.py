"""A simulated buffer pool: page faults under an LRU cache.

:mod:`repro.instrumentation.paging` counts *distinct* pages per
operation; this module simulates the storage layer the paper's §3.3
reasoning is about — a buffer pool of ``capacity`` pages with LRU
eviction over a row-major array of ``page_size``-cell pages.  Query
benchmarks replay their access patterns through a pool to measure actual
faults: constant for prefix-sum queries, volume-bound for scans, and
thrash-prone for cross-stride sweeps.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

from repro._util import Box
from repro.instrumentation.paging import flat_index


class BufferPool:
    """An LRU page cache with fault accounting.

    Args:
        page_size: Cells per page.
        capacity: Pages held simultaneously (``None`` = unbounded).
    """

    def __init__(self, page_size: int, capacity: int | None = None) -> None:
        if page_size < 1:
            raise ValueError(f"page size must be >= 1, got {page_size}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.page_size = int(page_size)
        self.capacity = capacity
        self.faults = 0
        self.hits = 0
        self._pages: OrderedDict[int, None] = OrderedDict()

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._pages)

    @property
    def accesses(self) -> int:
        """Total page requests served."""
        return self.faults + self.hits

    def reset(self) -> None:
        """Clear statistics and evict everything."""
        self.faults = 0
        self.hits = 0
        self._pages.clear()

    def touch_page(self, page: int) -> bool:
        """Request one page; returns True on a fault (page load)."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return False
        self.faults += 1
        self._pages[page] = None
        if self.capacity is not None and len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return True

    def touch_cell(self, flat: int) -> bool:
        """Request the page holding one flat cell offset."""
        return self.touch_page(flat // self.page_size)

    def touch_index(
        self, index: Sequence[int], shape: Sequence[int]
    ) -> bool:
        """Request the page holding one d-dimensional cell."""
        return self.touch_cell(flat_index(index, shape))

    def scan_box(self, box: Box, shape: Sequence[int]) -> int:
        """Replay a row-major scan of ``box``; returns faults incurred.

        The scan walks contiguous runs (fixed leading coordinates, full
        extent in the last dimension) in flat order — the order numpy
        reads a sliced sum.
        """
        if box.is_empty:
            return 0
        before = self.faults
        run_length = box.hi[-1] - box.lo[-1] + 1
        leading = Box(box.lo[:-1], box.hi[:-1])
        prefixes = leading.iter_points() if leading.ndim else iter([()])
        for prefix in prefixes:
            start = flat_index(prefix + (box.lo[-1],), shape)
            first_page = start // self.page_size
            last_page = (start + run_length - 1) // self.page_size
            for page in range(first_page, last_page + 1):
                self.touch_page(page)
        return self.faults - before

    def theorem1_corners(self, box: Box, shape: Sequence[int]) -> int:
        """Replay a Theorem 1 corner read; returns faults incurred."""
        from itertools import product

        before = self.faults
        for choice in product((False, True), repeat=box.ndim):
            index = tuple(
                box.hi[j] if take_hi else box.lo[j] - 1
                for j, take_hi in enumerate(choice)
            )
            if any(x < 0 for x in index):
                continue
            self.touch_index(index, shape)
        return self.faults - before
