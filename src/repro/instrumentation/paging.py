"""Page-touch accounting — the storage-level cost §3.3 reasons about.

The paper's construction discussion is explicitly I/O-aware: sweeps visit
``P`` in storage order so *"each page of P will be paged in at most twice
for each phase"*, and the whole point of constant-access queries is that
a range-sum touches O(2^d) pages while a scan touches ``V/page`` of them.

This module counts **distinct pages** touched by the two access shapes
the query paths use, assuming row-major layout and pages of
``page_size`` consecutive cells:

* :func:`pages_for_cells` — scattered single-cell reads (prefix corners,
  tree nodes);
* :func:`pages_for_box` — a rectangular scan (naive queries, boundary
  regions), computed exactly without materializing the cell set.

``benchmarks/bench_paging.py`` uses these to restate the headline
comparison in pages instead of cells.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro._util import Box


def flat_index(index: Sequence[int], shape: Sequence[int]) -> int:
    """Row-major flat offset of a cell."""
    flat = 0
    for i, n in zip(index, shape):
        flat = flat * n + i
    return flat


def pages_for_cells(
    flat_indices: Iterable[int], page_size: int
) -> int:
    """Distinct pages covering a set of scattered cell reads."""
    if page_size < 1:
        raise ValueError(f"page size must be >= 1, got {page_size}")
    return len({index // page_size for index in flat_indices})


def pages_for_box(
    box: Box, shape: Sequence[int], page_size: int
) -> int:
    """Distinct pages touched by scanning every cell of ``box``.

    The box decomposes into contiguous row-major *runs*: one run per
    combination of the leading coordinates, each spanning the box's
    extent in the last dimension.  Runs are visited in increasing flat
    order, so distinct pages are counted by tracking the last page seen.
    """
    if page_size < 1:
        raise ValueError(f"page size must be >= 1, got {page_size}")
    if box.is_empty:
        return 0
    shape = tuple(int(n) for n in shape)
    if box.ndim != len(shape):
        raise ValueError("box dimensionality does not match the shape")
    run_length = box.hi[-1] - box.lo[-1] + 1
    leading = Box(box.lo[:-1], box.hi[:-1])
    pages = 0
    last_page = -1
    prefixes = leading.iter_points() if leading.ndim else iter([()])
    for prefix in prefixes:
        start = flat_index(prefix + (box.lo[-1],), shape)
        first_page = start // page_size
        last = (start + run_length - 1) // page_size
        if first_page == last_page:
            first_page += 1
        if first_page > last:
            continue
        pages += last - first_page + 1
        last_page = last
    return pages


def theorem1_corner_pages(
    box: Box, shape: Sequence[int], page_size: int
) -> int:
    """Pages touched by a Theorem 1 evaluation: the ≤ 2^d corner cells."""
    from itertools import product

    corners = []
    for choice in product((False, True), repeat=box.ndim):
        index = tuple(
            box.hi[j] if take_hi else box.lo[j] - 1
            for j, take_hi in enumerate(choice)
        )
        if any(x < 0 for x in index):
            continue
        corners.append(flat_index(index, shape))
    return pages_for_cells(corners, page_size)
