"""repro — a reproduction of "Range Queries in OLAP Data Cubes".

Ho, Agrawal, Megiddo, Srikant — SIGMOD 1997.

The package implements the paper's two contributions — prefix-sum
range-sum structures (basic and blocked, with batch updates) and
branch-and-bound range-max trees (with batch updates) — plus every
substrate the paper builds on: the dense/extended/sparse cube models, the
§8–§9 cost model and physical-design optimizers, and the §10 sparse
engines (B+-tree, R*-tree, dense-region discovery).

Quickstart::

    import numpy as np
    from repro import DataCube, IntegerDimension, CategoricalDimension

    dims = [IntegerDimension("age", 1, 100),
            IntegerDimension("year", 1987, 1996),
            CategoricalDimension("type", ["home", "auto", "health"])]
    cube = DataCube.from_records(records, dims, measure="revenue")
    cube.build_index(block_size=1, max_fanout=4)
    cube.sum(age=(37, 52), year=(1988, 1996), type="auto")
"""

from repro._util import Box
from repro.core import (
    BlockedPrefixSumCube,
    InvertibleOperator,
    MaxAssignment,
    PartialPrefixSumCube,
    PointUpdate,
    PrefixSumCube,
    RangeMaxTree,
    TreeSumHierarchy,
    apply_max_updates,
    progressive_bounds,
)
from repro.cube import (
    CategoricalDimension,
    DataCube,
    DateDimension,
    Dimension,
    ExtendedDataCube,
    IntegerDimension,
)
from repro.index import (
    ArrayBackend,
    IndexSpec,
    InstrumentedIndex,
    MemmapBackend,
    MemoryBackend,
    RangeMaxIndex,
    RangeMaxIndexMixin,
    RangeSumIndex,
    RangeSumIndexMixin,
    available_indexes,
    create_index,
    register_index,
)
from repro.instrumentation import AccessCounter
from repro.io import (
    load_blocked,
    load_index,
    load_max_tree,
    load_prefix_sum,
    save_blocked,
    save_index,
    save_max_tree,
    save_prefix_sum,
)
from repro.optimizer import MaterializedCuboidSet
from repro.query import (
    QueryStatistics,
    RangeQuery,
    RangeQueryEngine,
    RangeSpec,
)
from repro.sparse import (
    SparseCube,
    SparseRangeMaxEngine,
    SparseRangeSum1D,
    SparseRangeSumEngine,
)

__version__ = "1.0.0"

__all__ = [
    "AccessCounter",
    "ArrayBackend",
    "BlockedPrefixSumCube",
    "Box",
    "CategoricalDimension",
    "DataCube",
    "DateDimension",
    "Dimension",
    "ExtendedDataCube",
    "IndexSpec",
    "InstrumentedIndex",
    "IntegerDimension",
    "InvertibleOperator",
    "MaterializedCuboidSet",
    "MaxAssignment",
    "MemmapBackend",
    "MemoryBackend",
    "PartialPrefixSumCube",
    "PointUpdate",
    "PrefixSumCube",
    "QueryStatistics",
    "RangeMaxIndex",
    "RangeMaxIndexMixin",
    "RangeMaxTree",
    "RangeQuery",
    "RangeQueryEngine",
    "RangeSpec",
    "RangeSumIndex",
    "RangeSumIndexMixin",
    "SparseCube",
    "SparseRangeMaxEngine",
    "SparseRangeSum1D",
    "SparseRangeSumEngine",
    "TreeSumHierarchy",
    "apply_max_updates",
    "available_indexes",
    "create_index",
    "load_blocked",
    "load_index",
    "load_max_tree",
    "load_prefix_sum",
    "progressive_bounds",
    "register_index",
    "save_blocked",
    "save_index",
    "save_max_tree",
    "save_prefix_sum",
    "__version__",
]
