"""Shared geometric helpers for d-dimensional integer boxes.

Every structure in this library reasons about axis-aligned boxes of integer
cells (the paper's ``Region(l1:h1, ..., ld:hd)`` notation, bounds inclusive).
This module centralizes the box arithmetic so the query-path code in
:mod:`repro.core` reads like the paper's pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box of integer cells: ``lo[j] <= i_j <= hi[j]``.

    A box is *empty* when ``hi[j] < lo[j]`` in any dimension.  Empty boxes
    are legal values (several paper constructions produce them naturally,
    e.g. degenerate members of the ``3^d`` blocked decomposition) and have
    volume zero.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"lo has {len(self.lo)} dims but hi has {len(self.hi)}"
            )

    @property
    def ndim(self) -> int:
        """Number of dimensions of the box."""
        return len(self.lo)

    @property
    def is_empty(self) -> bool:
        """True when the box contains no integer cells."""
        return any(h < l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of integer cells inside the box (0 when empty)."""
        vol = 1
        for l, h in zip(self.lo, self.hi):
            if h < l:
                return 0
            vol *= h - l + 1
        return vol

    @property
    def lengths(self) -> tuple[int, ...]:
        """Per-dimension cell counts, clamped at zero for empty extents."""
        return tuple(max(0, h - l + 1) for l, h in zip(self.lo, self.hi))

    def slices(self) -> tuple[slice, ...]:
        """Numpy-style slices selecting exactly this box from an array."""
        return tuple(slice(l, h + 1) for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the box."""
        return all(
            l <= p <= h for l, p, h in zip(self.lo, point, self.hi)
        )

    def contains_box(self, other: Box) -> bool:
        """True when ``other`` is entirely inside this box.

        An empty ``other`` is contained in every box.
        """
        if other.is_empty:
            return True
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    def intersect(self, other: Box) -> Box:
        """The (possibly empty) intersection of two boxes."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def intersects(self, other: Box) -> bool:
        """True when the two boxes share at least one cell."""
        return not self.intersect(other).is_empty

    def iter_points(self) -> Iterator[tuple[int, ...]]:
        """Yield every integer point of the box in row-major order."""
        if self.is_empty:
            return
        point = list(self.lo)
        ndim = self.ndim
        while True:
            yield tuple(point)
            axis = ndim - 1
            while axis >= 0:
                point[axis] += 1
                if point[axis] <= self.hi[axis]:
                    break
                point[axis] = self.lo[axis]
                axis -= 1
            if axis < 0:
                return

    def __str__(self) -> str:
        ranges = ", ".join(
            f"{l}:{h}" for l, h in zip(self.lo, self.hi)
        )
        return f"Box({ranges})"


def full_box(shape: Sequence[int]) -> Box:
    """The box covering an entire array of the given shape."""
    return Box(tuple(0 for _ in shape), tuple(n - 1 for n in shape))


def box_difference(outer: Box, inner: Box) -> list[Box]:
    """Decompose ``outer − inner`` into at most ``2·d`` disjoint boxes.

    ``inner`` must be contained in ``outer``.  The decomposition peels two
    slabs per axis (below and above ``inner``), shrinking the working box to
    the inner extent along each processed axis, which yields pairwise
    disjoint boxes whose union is exactly the set difference.

    This is how a blocked range-sum query *actually evaluates* the
    complement of a boundary region (paper §4.2): the complement region is
    generally L-shaped, so it is materialized as disjoint rectangles and
    each rectangle is scanned from ``A``.
    """
    if inner.is_empty:
        return [] if outer.is_empty else [outer]
    if not outer.contains_box(inner):
        raise ValueError(f"{inner} is not contained in {outer}")
    pieces: list[Box] = []
    lo = list(outer.lo)
    hi = list(outer.hi)
    for axis in range(outer.ndim):
        if lo[axis] < inner.lo[axis]:
            piece_hi = list(hi)
            piece_hi[axis] = inner.lo[axis] - 1
            pieces.append(Box(tuple(lo), tuple(piece_hi)))
        if inner.hi[axis] < hi[axis]:
            piece_lo = list(lo)
            piece_lo[axis] = inner.hi[axis] + 1
            pieces.append(Box(tuple(piece_lo), tuple(hi)))
        lo[axis] = inner.lo[axis]
        hi[axis] = inner.hi[axis]
    return [p for p in pieces if not p.is_empty]


def check_query_box(
    box: Box, shape: Sequence[int], *, allow_empty: bool = True
) -> bool:
    """Validate a query box against a cube shape; report emptiness.

    This is the one normative implementation of the empty-range rule
    (see ``docs/TESTING.md``): an empty box (``hi < lo`` somewhere) is a
    *legal query* whose aggregate is the operator identity, so bounds
    are not validated for it — the caller short-circuits before touching
    any storage.  Non-empty boxes must lie inside the cube.

    Args:
        box: The query region.
        shape: The cube shape queried against.
        allow_empty: When False, an empty box raises instead (paths that
            need a witness cell, e.g. ``max_index``).

    Returns:
        True when the box is empty (caller returns the identity),
        False when it is a validated non-empty region.

    Raises:
        ValueError: Dimensionality mismatch, out-of-bounds non-empty
            box, or an empty box with ``allow_empty=False``.
    """
    if box.ndim != len(shape):
        raise ValueError(
            f"query has {box.ndim} dims, cube has {len(shape)}"
        )
    if box.is_empty:
        if not allow_empty:
            raise ValueError(f"empty query region {box}")
        return True
    for j, (lo, hi, n) in enumerate(zip(box.lo, box.hi, shape)):
        if not 0 <= lo <= hi < n:
            raise ValueError(
                f"range {lo}:{hi} outside dimension {j} of size {n}"
            )
    return False


def validate_range(lo: int, hi: int, size: int, name: str = "range") -> None:
    """Raise ``ValueError`` unless ``0 <= lo <= hi < size``."""
    if not 0 <= lo <= hi < size:
        raise ValueError(
            f"invalid {name} {lo}:{hi} for dimension of size {size}"
        )
