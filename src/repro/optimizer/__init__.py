"""Physical-design algorithms: cost model, dimension/cuboid/block choices."""

from repro.optimizer.advisor import (
    DesignDelta,
    PhysicalDesign,
    advise,
    advise_from_snapshot,
    re_advise,
)
from repro.optimizer.block_size import BlockSizeChoice, choose_block_size
from repro.optimizer.cost_model import (
    ancestor_constrained_optimum,
    benefit_space_ratio,
    blocked_update_cost,
    boundary_cells_per_surface,
    design_build_cost,
    figure11_difference,
    materialization_benefit,
    materialization_space,
    naive_cost,
    optimal_block_size_real,
    prefix_sum_cost,
    tree_sum_cost,
)
from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    CuboidWorkload,
    Materialization,
    SelectionResult,
    workloads_from_log,
    workloads_from_weighted,
)
from repro.optimizer.materialize import (
    MaterializedCuboid,
    MaterializedCuboidSet,
)
from repro.optimizer.dimension_selection import (
    active_range_lengths,
    brute_force_selection,
    exact_selection,
    figure12_example,
    heuristic_selection,
    subset_cost,
)

__all__ = [
    "BlockSizeChoice",
    "CuboidSelector",
    "CuboidWorkload",
    "DesignDelta",
    "Materialization",
    "MaterializedCuboid",
    "MaterializedCuboidSet",
    "PhysicalDesign",
    "SelectionResult",
    "advise",
    "advise_from_snapshot",
    "active_range_lengths",
    "ancestor_constrained_optimum",
    "benefit_space_ratio",
    "blocked_update_cost",
    "boundary_cells_per_surface",
    "brute_force_selection",
    "choose_block_size",
    "design_build_cost",
    "exact_selection",
    "figure11_difference",
    "figure12_example",
    "heuristic_selection",
    "materialization_benefit",
    "materialization_space",
    "naive_cost",
    "optimal_block_size_real",
    "prefix_sum_cost",
    "re_advise",
    "subset_cost",
    "tree_sum_cost",
    "workloads_from_log",
    "workloads_from_weighted",
]
