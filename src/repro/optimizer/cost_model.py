"""The analytic cost model of paper §8 and §9.3.

All costs are element accesses (the paper's response-time proxy) for a
query with Table 1 statistics ``(V, x_i, S)``:

* ``F(b)`` — expected boundary cells per unit of query surface:
  ``b/4`` for even ``b``, ``b/4 − 1/(4b)`` for odd ``b`` (so ``F(1) = 0``);
  the ``/4`` rather than ``/2`` reflects the complement trick.
* blocked prefix sum: ``cost ≈ 2^d + S·F(b)`` (Equation 3);
* tree hierarchy: ``cost ≈ F(b) · Σ_{k=0}^{t−1} S / b^{k(d−1)}`` — the
  surface shrinks by ``b^{d−1}`` per level;
* naive scan: ``V``;
* benefit of materializing with block ``b``:
  ``N_Q (V − 2^d − S·b/4)``; space ``N / b^d``; their ratio
  ``(N_Q/N)[(V − 2^d) b^d − (S/4) b^{d+1}]`` is the §9.3 objective whose
  maximum sits at ``b* = ((V − 2^d)/(S/4)) · d/(d+1)``.

Figure 11 plots the tree-minus-prefix cost difference for queries of side
``α·b``; the paper's closed form ``d·α^{d−1}·b/2 − 2^d`` keeps only the
dominant ``k = 1`` term, and :func:`figure11_difference` offers both the
closed form and the full series.
"""

from __future__ import annotations

import math

from repro.query.stats import QueryStatistics


def boundary_cells_per_surface(block_size: int) -> float:
    """``F(b)`` of §8 — average boundary cells per surface unit."""
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    b = float(block_size)
    if block_size % 2 == 0:
        return b / 4.0
    return b / 4.0 - 1.0 / (4.0 * b)


def naive_cost(stats: QueryStatistics) -> float:
    """Access cost of a full scan: the query volume ``V``."""
    return stats.volume


def prefix_sum_cost(stats: QueryStatistics, block_size: int) -> float:
    """Equation 3: blocked prefix-sum cost ``2^d + S·F(b)``.

    ``b = 1`` gives the basic method's constant ``2^d`` since ``F(1) = 0``.
    """
    return 2.0**stats.ndim + stats.surface * boundary_cells_per_surface(
        block_size
    )


def tree_sum_cost(
    stats: QueryStatistics, block_size: int, depth: int | None = None
) -> float:
    """Hierarchical-tree range-sum cost, ``F(b)·Σ_k S / b^{k(d−1)}`` (§8).

    Args:
        stats: Query statistics.
        block_size: The tree fanout per dimension ``b``.
        depth: Tree depth ``t``; defaults to the depth of a tree whose
            root covers the query (``⌈log_b max_i x_i⌉``).
    """
    if block_size < 2:
        raise ValueError("the tree model needs a fanout b >= 2")
    d = stats.ndim
    if depth is None:
        longest = max(stats.lengths)
        depth = max(1, math.ceil(math.log(max(longest, 2), block_size)))
    f_b = boundary_cells_per_surface(block_size)
    shrink = float(block_size) ** (d - 1)
    total = 0.0
    term = stats.surface
    for _ in range(depth):
        total += term
        if shrink <= 1.0:
            # d = 1: the surface does not shrink with height; every level
            # costs the same, which is why the series is summed literally.
            continue
        term /= shrink
    return f_b * total


def figure11_difference(
    alpha: float,
    block_size: int,
    ndim: int,
    depth: int | None = None,
    closed_form: bool = True,
) -> float:
    """Tree cost minus prefix cost for queries of side ``α·b`` (Figure 11).

    Args:
        alpha: Query side length in blocks.
        block_size: Shared block size / fanout ``b``.
        ndim: Dimensionality ``d``.
        depth: Series depth for the exact variant.
        closed_form: Use the paper's dominant-term closed form
            ``d·α^{d−1}·b/2 − 2^d``; otherwise evaluate both cost models
            and subtract.
    """
    if closed_form:
        return (
            ndim * alpha ** (ndim - 1) * block_size / 2.0 - 2.0**ndim
        )
    stats = QueryStatistics.from_lengths(
        [alpha * block_size] * ndim
    )
    return tree_sum_cost(stats, block_size, depth) - prefix_sum_cost(
        stats, block_size
    )


def materialization_benefit(
    stats: QueryStatistics, query_count: float, block_size: int
) -> float:
    """§9.3 benefit: ``N_Q (V − 2^d − S·b/4)`` (clamped at zero).

    Uses the paper's ``F(b) ≈ b/4`` approximation for ``b > 1`` and the
    exact ``F(1) = 0`` for the unblocked case.
    """
    f_b = 0.0 if block_size == 1 else block_size / 4.0
    gain = query_count * (
        stats.volume - 2.0**stats.ndim - stats.surface * f_b
    )
    return max(0.0, gain)


def materialization_space(cells: int, ndim: int, block_size: int) -> float:
    """§9.3 space: ``N / b^d`` cells for the packed blocked array."""
    return cells / float(block_size) ** ndim


def blocked_update_cost(
    cells: int,
    ndim: int,
    block_size: int,
    batch_size: float = 1.0,
) -> float:
    """Expected maintenance cost *per point update* of a blocked prefix sum.

    The update-vs-query tradeoff the §5 batch machinery quantifies: a
    point update must fold its delta into every cell of the packed array
    ``P`` that dominates the updated cell — on average ``(N/b^d) / 2^d``
    cells for a uniformly placed update (each coordinate dominates half
    the blocks in expectation).  Coarser blocks therefore make updates
    cheaper exactly as they make queries costlier, which is the tension
    the online advisor trades off.

    Buffered updates amortize: the blocked Theorem-2 algorithm first
    contracts a batch of ``k`` updates block-wise and then partitions the
    affected cells into at most ``∏_{j=0}^{d−1}(k+j)/d!`` delta-uniform
    regions, so the whole batch writes each affected cell of ``P`` once —
    total work never exceeds the array size ``N/b^d`` no matter how large
    the batch.  Per update that caps the cost at ``(N/b^d)/k``.

    Args:
        cells: ``N`` — dense cell count of the cuboid.
        ndim: ``d`` — the cuboid's dimensionality.
        block_size: ``b`` — the structure's block size.
        batch_size: ``k`` — average updates buffered per §5 batch; ``1``
            models unbatched single-update maintenance.

    Returns:
        Expected element writes per update (the same access-count
        currency as the query-cost formulas).
    """
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    array_cells = materialization_space(cells, ndim, block_size)
    dominated = array_cells / 2.0**ndim
    return min(dominated, array_cells / float(batch_size)) + 1.0


def design_build_cost(cells: int, ndim: int, base_cells: int) -> float:
    """Modeled one-off cost of materializing one cuboid prefix sum.

    Building a chosen structure costs one pass over the base cube to
    compute the group-by array (``N_base`` reads) plus ``d`` prefix
    sweeps over the cuboid's ``N`` cells — the currency the advisor uses
    to amortize a recommended swap against its expected gain.
    """
    return float(base_cells) + float(ndim) * float(cells)


def benefit_space_ratio(
    stats: QueryStatistics,
    query_count: float,
    cells: int,
    block_size: int,
) -> float:
    """The §9.3 objective ``(N_Q/N)[(V−2^d)b^d − (S/4)b^{d+1}]``."""
    benefit = materialization_benefit(stats, query_count, block_size)
    space = materialization_space(cells, stats.ndim, block_size)
    return benefit / space


def optimal_block_size_real(stats: QueryStatistics) -> float:
    """The §9.3 closed-form maximum ``b* = ((V−2^d)/(S/4)) · d/(d+1)``.

    Returns a real number (callers round to the better integer neighbour);
    values at or below 1 mean blocking cannot pay off.
    """
    d = stats.ndim
    headroom = stats.volume - 2.0**d
    if headroom <= 0 or stats.surface <= 0:
        return 0.0
    return headroom / (stats.surface / 4.0) * d / (d + 1.0)


def ancestor_constrained_optimum(ancestor_block: int, ndim: int) -> float:
    """§9.3 with an ancestor already blocked at ``b'``: the benefit is
    ``N_Q (S/4)(b' − b)`` for ``b < b'`` and the ratio's maximum sits at
    ``b = b'·d/(d+1)``."""
    if ancestor_block < 1:
        raise ValueError("ancestor block size must be >= 1")
    return ancestor_block * ndim / (ndim + 1.0)
