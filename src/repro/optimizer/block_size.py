"""Choosing the block size that maximizes benefit/space (paper §9.3).

For a cuboid with ``N`` cells, ``N_Q`` queries of average statistics
``(V, S)``, the benefit of a blocked prefix sum with block ``b`` is
``N_Q (V − 2^d − S·b/4)``, the space ``N/b^d``, and the ratio is maximized
at ``b* = ((V − 2^d)/(S/4)) · d/(d+1)`` — unless:

* ``V − 2^d <= 0`` — no benefit with or without blocking;
* ``V − 2^d <= S/4`` — blocking never pays; only ``b = 1`` can help;
* an **ancestor** cuboid already carries a prefix sum with block ``b'`` —
  then only ``b < b'`` helps, with benefit ``N_Q (S/4)(b' − b)`` and the
  constrained maximum at ``b = b'·d/(d+1)``;
* a **descendant** carries one — the benefit function is then piecewise
  linear in ``b`` with one breakpoint per constrained descendant, so each
  piece's maximum is evaluated separately.

``b*`` is generally not an integer; per §9.3 the two bounding integers are
compared and the better one kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.optimizer.cost_model import (
    ancestor_constrained_optimum,
    materialization_space,
    optimal_block_size_real,
)
from repro.query.stats import QueryStatistics


@dataclass(frozen=True)
class BlockSizeChoice:
    """Outcome of the block-size optimization for one cuboid."""

    block_size: int
    benefit: float
    space: float

    @property
    def ratio(self) -> float:
        """Benefit per cell of auxiliary space."""
        return self.benefit / self.space if self.space > 0 else 0.0


def _best_integer_around(
    candidates: Sequence[float],
    benefit_fn: Callable[[int], float],
    cells: int,
    ndim: int,
    upper: int,
) -> BlockSizeChoice | None:
    """Evaluate each candidate's two bounding integers; keep the best."""
    seen: set[int] = set()
    best: BlockSizeChoice | None = None
    for real_b in candidates:
        for b in {int(real_b), int(real_b) + 1}:
            if b < 1 or b > upper or b in seen:
                continue
            seen.add(b)
            benefit = benefit_fn(b)
            if benefit <= 0:
                continue
            space = materialization_space(cells, ndim, b)
            choice = BlockSizeChoice(b, benefit, space)
            if best is None or choice.ratio > best.ratio:
                best = choice
    return best


def choose_block_size(
    stats: QueryStatistics,
    query_count: float,
    cells: int,
    ancestor_block: int | None = None,
    descendant_benefits: Sequence[Callable[[int], float]] = (),
    max_block: int = 4096,
) -> BlockSizeChoice | None:
    """The §9.3 optimizer for one cuboid.

    Args:
        stats: Average query statistics of the queries this prefix sum
            would serve.
        query_count: ``N_Q`` — how many such queries.
        cells: ``N`` — cells of the cuboid's dense array.
        ancestor_block: Block size ``b'`` of the best prefix sum already
            materialized on an ancestor cuboid, if any.
        descendant_benefits: Extra benefit functions ``g(b)`` contributed
            by descendant cuboids (each piecewise linear with its own
            breakpoint); added to the cuboid's own benefit.
        max_block: Safety cap on considered block sizes.

    Returns:
        The best choice, or ``None`` when no block size yields positive
        benefit (the cuboid should not be materialized).
    """
    d = stats.ndim
    if d == 0 or cells <= 0:
        return None
    headroom = stats.volume - 2.0**d

    def own_benefit(b: int) -> float:
        f_b = 0.0 if b == 1 else b / 4.0
        gain = headroom - stats.surface * f_b
        if ancestor_block is not None:
            # Current cost is the ancestor's 2^d + S b'/4, not the naive V;
            # and b >= b' cannot improve on the ancestor at all.
            if b >= ancestor_block:
                return 0.0
            ancestor_f = (
                0.0 if ancestor_block == 1 else ancestor_block / 4.0
            )
            gain = stats.surface * (ancestor_f - f_b)
        return max(0.0, query_count * gain)

    def total_benefit(b: int) -> float:
        total = own_benefit(b)
        for extra in descendant_benefits:
            total += max(0.0, extra(b))
        return total

    candidates: list[float] = [1.0]
    if ancestor_block is None:
        if headroom > stats.surface / 4.0:
            candidates.append(optimal_block_size_real(stats))
    else:
        candidates.append(
            ancestor_constrained_optimum(ancestor_block, d)
        )
    # Each descendant's piecewise benefit adds a breakpoint b0; the maxima
    # of a piecewise-linear-times-b^d function on each segment is at the
    # segment's own stationary point b0·d/(d+1) or at the breakpoint.
    for extra in descendant_benefits:
        lo, hi = 1, max_block
        while lo < hi:  # find the breakpoint where the benefit vanishes
            mid = (lo + hi) // 2
            if extra(mid) > 0:
                lo = mid + 1
            else:
                hi = mid
        breakpoint_b = lo
        candidates.append(float(breakpoint_b))
        candidates.append(breakpoint_b * d / (d + 1.0))
    return _best_integer_around(
        candidates, total_benefit, cells, d, max_block
    )
