"""Choosing the dimensions to prefix-sum over (paper §9.1).

Not every dimension deserves prefix sums: if queries never put ranges on
attribute ``d_j``, including ``d_j`` in the prefix structure doubles every
query's term count for nothing.  Given a query log, the cost model is
multiplicative: query ``q_i``'s time-complexity factor from attribute
``d_j`` is ``2`` when ``d_j`` is prefix-summed and ``r_ij`` otherwise,
where ``r_ij`` is the range length when the attribute is *active* in
``q_i`` and ``1`` when passive (singleton or ``all``).

Three algorithms, exactly as surveyed in §9.1:

* :func:`heuristic_selection` — the ``O(md)`` heuristic: pick
  ``X' = {d_j | R_j >= 2m}`` with ``R_j = Σ_i r_ij`` (Figure 12);
* :func:`exact_selection` — the ``O(m·2^d)`` optimum: walk the ``2^d``
  subsets in binary-reflected Gray-code order so each step flips one
  attribute and every per-query cost is updated by one multiply;
* :func:`brute_force_selection` — the naive ``O(m·d·2^d)`` evaluation
  (kept as the test oracle for the Gray-code walk).
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence

import numpy as np

from repro.query.ranges import RangeQuery


def active_range_lengths(
    queries: Sequence[RangeQuery], shape: Sequence[int]
) -> np.ndarray:
    """The ``r_ij`` matrix: range length if active, else 1 (§9.1)."""
    shape = tuple(int(n) for n in shape)
    matrix = np.ones((len(queries), len(shape)), dtype=np.float64)
    for i, query in enumerate(queries):
        if query.ndim != len(shape):
            raise ValueError("query dimensionality does not match the shape")
        for j, (spec, n) in enumerate(zip(query.specs, shape)):
            if spec.is_active(n):
                matrix[i, j] = spec.length(n)
    return matrix


def subset_cost(lengths: np.ndarray, chosen: Sequence[int]) -> float:
    """Total workload cost of prefix-summing the ``chosen`` attributes.

    ``Σ_i Π_j f_ij`` with ``f_ij = 2`` for chosen ``j`` and ``r_ij``
    otherwise — the multiplicative model of §9.1.
    """
    factors = lengths.copy()
    for j in chosen:
        factors[:, j] = 2.0
    return float(factors.prod(axis=1).sum())


def heuristic_selection(
    lengths: np.ndarray,
) -> tuple[list[int], np.ndarray]:
    """The ``O(md)`` heuristic of §9.1 (Figure 12).

    Args:
        lengths: The ``r_ij`` matrix from :func:`active_range_lengths`.

    Returns:
        ``(chosen_dimensions, column_sums)`` where
        ``chosen = {j | R_j >= 2m}`` and ``column_sums`` is the ``R_j``
        row shown in Figure 12.
    """
    m = lengths.shape[0]
    column_sums = lengths.sum(axis=0)
    chosen = [int(j) for j in np.nonzero(column_sums >= 2 * m)[0]]
    return chosen, column_sums


def _gray_flip_sequence(ndim: int) -> list[int]:
    """Bit flipped at each step of the binary-reflected Gray code."""
    flips: list[int] = []
    for step in range(1, 2**ndim):
        flips.append((step & -step).bit_length() - 1)
    return flips


def exact_selection(lengths: np.ndarray) -> tuple[list[int], float]:
    """The optimal subset by an ``O(m·2^d)`` Gray-code walk (§9.1).

    Adjacent subsets in binary-reflected Gray-code order differ in one
    attribute, so each per-query cost is repaired with a single multiply
    (``× 2/r_ij`` on insert, ``× r_ij/2`` on removal) instead of being
    recomputed from scratch.

    Returns:
        ``(chosen_dimensions, total_cost)`` of the minimum-cost subset.
    """
    m, d = lengths.shape
    if m == 0:
        return [], 0.0
    costs = lengths.prod(axis=1)  # subset = {} to start
    best_cost = float(costs.sum())
    best_mask = 0
    mask = 0
    for j in _gray_flip_sequence(d):
        bit = 1 << j
        if mask & bit:
            costs *= lengths[:, j] / 2.0
        else:
            costs *= 2.0 / lengths[:, j]
        mask ^= bit
        total = float(costs.sum())
        if total < best_cost:
            best_cost = total
            best_mask = mask
    chosen = [j for j in range(d) if best_mask & (1 << j)]
    return chosen, best_cost


def brute_force_selection(lengths: np.ndarray) -> tuple[list[int], float]:
    """The naive ``O(m·d·2^d)`` optimum — the test oracle for the walk."""
    _, d = lengths.shape
    best: tuple[list[int], float] | None = None
    for k in range(d + 1):
        for subset in combinations(range(d), k):
            cost = subset_cost(lengths, subset)
            if best is None or cost < best[1]:
                best = (list(subset), cost)
    assert best is not None
    return best


def figure12_example() -> tuple[np.ndarray, np.ndarray, list[int]]:
    """The worked example of Figure 12.

    Three queries over five attributes; the heuristic sums each column
    (``R = [701, 601, 102, 5, 3]``) and keeps attributes with
    ``R_j >= 2m = 6``, i.e. ``X' = {1, 2, 3}`` in the paper's 1-based
    numbering (``{0, 1, 2}`` zero-based).
    """
    lengths = np.array(
        [
            [1.0, 100.0, 1.0, 3.0, 1.0],
            [200.0, 1.0, 100.0, 1.0, 1.0],
            [500.0, 500.0, 1.0, 1.0, 1.0],
        ]
    )
    chosen, sums = heuristic_selection(lengths)
    return lengths, sums, chosen
