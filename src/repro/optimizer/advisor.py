"""The physical-design advisor: §9 end to end behind one call.

Section 9 describes three coupled decisions — which dimensions deserve
prefix sums, which cuboids to materialize, and with what block sizes.
:func:`advise` runs the whole pipeline from a query log and a space
budget and returns a :class:`PhysicalDesign`: the chosen plan, the §9.1
dimension diagnosis, a human-readable report, and a one-call
:meth:`PhysicalDesign.build` that materializes everything into a
servable :class:`~repro.optimizer.materialize.MaterializedCuboidSet`.

Typical use::

    design = advise(cube.shape, log.queries, space_budget=50_000)
    print(design.report())
    served = design.build(cube_array)
    served.range_sum(query)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    SelectionResult,
    workloads_from_log,
)
from repro.optimizer.dimension_selection import (
    active_range_lengths,
    exact_selection,
    heuristic_selection,
)
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.ranges import RangeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.backend import ArrayBackend


@dataclass(frozen=True)
class PhysicalDesign:
    """The advisor's output: diagnosis + plan + builder."""

    shape: tuple[int, ...]
    query_count: int
    range_heavy_dims: tuple[int, ...]  # §9.1 heuristic choice
    optimal_dims: tuple[int, ...]  # §9.1 exact choice
    column_sums: tuple[float, ...]  # the R_j row of Figure 12
    selection: SelectionResult  # §9.2/§9.3 plan

    @property
    def plan(self):
        """The chosen ``(cuboid, block size)`` materializations."""
        return self.selection.chosen

    def build(
        self,
        cube: np.ndarray,
        backend: ArrayBackend | None = None,
    ) -> MaterializedCuboidSet:
        """Materialize the plan over a concrete cube.

        Args:
            cube: The base measure array the plan was advised for.
            backend: Array backend threaded into every cuboid structure
                (``MemmapBackend`` serves the plan out of core).
        """
        if tuple(cube.shape) != self.shape:
            raise ValueError(
                f"cube shape {cube.shape} does not match the advised "
                f"shape {self.shape}"
            )
        return MaterializedCuboidSet(cube, self.plan, backend=backend)

    def report(self, dim_names: Sequence[str] | None = None) -> str:
        """A human-readable summary of every decision."""
        names = (
            [f"d{j}" for j in range(len(self.shape))]
            if dim_names is None
            else list(dim_names)
        )
        lines = [
            f"Physical design for a {'×'.join(map(str, self.shape))} cube "
            f"({self.query_count} logged queries)",
            "",
            "Dimension diagnosis (§9.1):",
        ]
        threshold = 2 * self.query_count
        for j, total in enumerate(self.column_sums):
            verdict = "range-heavy" if total >= threshold else "passive"
            lines.append(
                f"  {names[j]:<14} R_j = {total:>10.0f}  ({verdict})"
            )
        lines.append(
            "  heuristic X' = {"
            + ", ".join(names[j] for j in self.range_heavy_dims)
            + "}; exact X' = {"
            + ", ".join(names[j] for j in self.optimal_dims)
            + "}"
        )
        lines.append("")
        lines.append("Materializations (§9.2–§9.3):")
        if not self.plan:
            lines.append("  (nothing pays off under this budget)")
        for chosen in self.plan:
            label = ", ".join(names[j] for j in chosen.key)
            lines.append(
                f"  prefix sums on ({label}) with b = "
                f"{chosen.block_size}  [{chosen.space:.0f} cells]"
            )
        lines.append("")
        baseline = self.selection.baseline_cost
        reduction = (
            self.selection.benefit / baseline if baseline > 0 else 0.0
        )
        lines.append(
            f"Space used: {self.selection.total_space:.0f} cells; "
            f"modeled workload cost cut: {reduction:.0%}"
        )
        return "\n".join(lines)


def advise(
    shape: Sequence[int],
    queries: Sequence[RangeQuery],
    space_budget: float,
    max_block: int = 128,
    restrict_prefix_dims: bool = False,
) -> PhysicalDesign:
    """Run the full §9 pipeline over a query log.

    Args:
        shape: Rank-domain shape of the base cube.
        queries: The logged queries (e.g. ``QueryLog.queries``).
        space_budget: Auxiliary cells allowed for all prefix structures.
        max_block: Largest block size the selector considers.
        restrict_prefix_dims: Apply the §9.1 heuristic *per chosen
            cuboid*: dimensions the log never ranges over keep raw (the
            paper's "even for cuboids that include dimension d3, the
            prefix sum would only be computed on other dimensions").

    Returns:
        The complete design; call :meth:`PhysicalDesign.build` to
        materialize it.
    """
    shape = tuple(int(n) for n in shape)
    if not queries:
        raise ValueError("the advisor needs at least one logged query")
    lengths = active_range_lengths(queries, shape)
    heuristic_chosen, column_sums = heuristic_selection(lengths)
    exact_chosen, _ = exact_selection(lengths)
    workloads = workloads_from_log(queries, shape)
    selector = CuboidSelector(
        shape, workloads, space_budget, max_block=max_block
    )
    selection = selector.solve()
    if restrict_prefix_dims:
        selection = _restrict_plan_dims(selection, lengths, len(queries))
    return PhysicalDesign(
        shape=shape,
        query_count=len(queries),
        range_heavy_dims=tuple(heuristic_chosen),
        optimal_dims=tuple(exact_chosen),
        column_sums=tuple(float(v) for v in column_sums),
        selection=selection,
    )


def _restrict_plan_dims(
    selection: SelectionResult, lengths, query_count: int
) -> SelectionResult:
    """Annotate each materialization with its §9.1 dimension subset.

    Within a cuboid, a dimension keeps prefix accumulation only when the
    log's heuristic column sum reaches ``2m`` (Figure 12's threshold);
    cuboids whose every dimension is range-light keep full accumulation
    (an all-raw structure would degenerate to a scan).
    """
    from dataclasses import replace

    column_sums = lengths.sum(axis=0)
    threshold = 2 * query_count
    annotated = []
    for chosen in selection.chosen:
        subset = tuple(
            j for j in chosen.key if column_sums[j] >= threshold
        )
        if subset and subset != chosen.key:
            annotated.append(replace(chosen, prefix_dims=subset))
        else:
            annotated.append(chosen)
    return replace(selection, chosen=tuple(annotated))
