"""The physical-design advisor: §9 end to end behind one call.

Section 9 describes three coupled decisions — which dimensions deserve
prefix sums, which cuboids to materialize, and with what block sizes.
:func:`advise` runs the whole pipeline from a query log and a space
budget and returns a :class:`PhysicalDesign`: the chosen plan, the §9.1
dimension diagnosis, a human-readable report, and a one-call
:meth:`PhysicalDesign.build` that materializes everything into a
servable :class:`~repro.optimizer.materialize.MaterializedCuboidSet`.

Typical use::

    design = advise(cube.shape, log.queries, space_budget=50_000)
    print(design.report())
    served = design.build(cube_array)
    served.range_sum(query)

The *online* form closes the loop: :func:`re_advise` consumes a
:class:`~repro.query.observer.WorkloadSnapshot` (live, decay-weighted
traffic) plus the incumbent plan and returns a :class:`DesignDelta` —
builds/drops/resizes with predicted gain, Theorem-2 update-cost
accounting, and a hysteresis gate so the serving layer only hot-swaps
when the predicted improvement clears a threshold.  Zero-traffic
windows degrade gracefully (the incumbent is kept; nothing raises).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.optimizer.cost_model import design_build_cost
from repro.optimizer.cuboid_selection import (
    CuboidSelector,
    Materialization,
    SelectionResult,
    workloads_from_log,
)
from repro.optimizer.dimension_selection import (
    active_range_lengths,
    exact_selection,
    heuristic_selection,
)
from repro.optimizer.materialize import MaterializedCuboidSet
from repro.query.observer import WorkloadSnapshot
from repro.query.ranges import RangeQuery

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.backend import ArrayBackend


@dataclass(frozen=True)
class PhysicalDesign:
    """The advisor's output: diagnosis + plan + builder."""

    shape: tuple[int, ...]
    query_count: int
    range_heavy_dims: tuple[int, ...]  # §9.1 heuristic choice
    optimal_dims: tuple[int, ...]  # §9.1 exact choice
    column_sums: tuple[float, ...]  # the R_j row of Figure 12
    selection: SelectionResult  # §9.2/§9.3 plan

    @property
    def plan(self) -> tuple[Materialization, ...]:
        """The chosen ``(cuboid, block size)`` materializations."""
        return self.selection.chosen

    def build(
        self,
        cube: np.ndarray,
        backend: ArrayBackend | None = None,
    ) -> MaterializedCuboidSet:
        """Materialize the plan over a concrete cube.

        Args:
            cube: The base measure array the plan was advised for.
            backend: Array backend threaded into every cuboid structure
                (``MemmapBackend`` serves the plan out of core).
        """
        if tuple(cube.shape) != self.shape:
            raise ValueError(
                f"cube shape {cube.shape} does not match the advised "
                f"shape {self.shape}"
            )
        return MaterializedCuboidSet(cube, self.plan, backend=backend)

    def report(self, dim_names: Sequence[str] | None = None) -> str:
        """A human-readable summary of every decision."""
        names = (
            [f"d{j}" for j in range(len(self.shape))]
            if dim_names is None
            else list(dim_names)
        )
        lines = [
            f"Physical design for a {'×'.join(map(str, self.shape))} cube "
            f"({self.query_count} logged queries)",
            "",
            "Dimension diagnosis (§9.1):",
        ]
        threshold = 2 * self.query_count
        for j, total in enumerate(self.column_sums):
            verdict = "range-heavy" if total >= threshold else "passive"
            lines.append(
                f"  {names[j]:<14} R_j = {total:>10.0f}  ({verdict})"
            )
        lines.append(
            "  heuristic X' = {"
            + ", ".join(names[j] for j in self.range_heavy_dims)
            + "}; exact X' = {"
            + ", ".join(names[j] for j in self.optimal_dims)
            + "}"
        )
        lines.append("")
        lines.append("Materializations (§9.2–§9.3):")
        if not self.plan:
            lines.append("  (nothing pays off under this budget)")
        for chosen in self.plan:
            label = ", ".join(names[j] for j in chosen.key)
            lines.append(
                f"  prefix sums on ({label}) with b = "
                f"{chosen.block_size}  [{chosen.space:.0f} cells]"
            )
        lines.append("")
        baseline = self.selection.baseline_cost
        reduction = (
            self.selection.benefit / baseline if baseline > 0 else 0.0
        )
        lines.append(
            f"Space used: {self.selection.total_space:.0f} cells; "
            f"modeled workload cost cut: {reduction:.0%}"
        )
        return "\n".join(lines)


def advise(
    shape: Sequence[int],
    queries: Sequence[RangeQuery],
    space_budget: float,
    max_block: int = 128,
    restrict_prefix_dims: bool = False,
) -> PhysicalDesign:
    """Run the full §9 pipeline over a query log.

    Args:
        shape: Rank-domain shape of the base cube.
        queries: The logged queries (e.g. ``QueryLog.queries``).
        space_budget: Auxiliary cells allowed for all prefix structures.
        max_block: Largest block size the selector considers.
        restrict_prefix_dims: Apply the §9.1 heuristic *per chosen
            cuboid*: dimensions the log never ranges over keep raw (the
            paper's "even for cuboids that include dimension d3, the
            prefix sum would only be computed on other dimensions").

    Returns:
        The complete design; call :meth:`PhysicalDesign.build` to
        materialize it.
    """
    shape = tuple(int(n) for n in shape)
    if not queries:
        raise ValueError("the advisor needs at least one logged query")
    lengths = active_range_lengths(queries, shape)
    heuristic_chosen, column_sums = heuristic_selection(lengths)
    exact_chosen, _ = exact_selection(lengths)
    workloads = workloads_from_log(queries, shape)
    selector = CuboidSelector(
        shape, workloads, space_budget, max_block=max_block
    )
    selection = selector.solve()
    if restrict_prefix_dims:
        selection = _restrict_plan_dims(selection, lengths, len(queries))
    return PhysicalDesign(
        shape=shape,
        query_count=len(queries),
        range_heavy_dims=tuple(heuristic_chosen),
        optimal_dims=tuple(exact_chosen),
        column_sums=tuple(float(v) for v in column_sums),
        selection=selection,
    )


@dataclass(frozen=True)
class DesignDelta:
    """A recommended plan change: incumbent vs candidate, with accounting.

    The online advisor's output.  Costs are modeled element accesses over
    the snapshot window's horizon (queries weighted by decay, updates
    charged Theorem-2 maintenance), so ``gain`` and ``build_cost`` share
    a currency and :attr:`should_swap` can gate actuation on a real
    amortization argument instead of a vibe.
    """

    shape: tuple[int, ...]
    incumbent: tuple[Materialization, ...]
    candidate: tuple[Materialization, ...]
    incumbent_cost: float
    candidate_cost: float
    build_cost: float
    hysteresis: float
    reason: str = ""

    @property
    def builds(self) -> tuple[Materialization, ...]:
        """Candidate members whose cuboid the incumbent does not cover."""
        have = {m.key for m in self.incumbent}
        return tuple(m for m in self.candidate if m.key not in have)

    @property
    def drops(self) -> tuple[Materialization, ...]:
        """Incumbent members the candidate abandons."""
        keep = {m.key for m in self.candidate}
        return tuple(m for m in self.incumbent if m.key not in keep)

    @property
    def resizes(self) -> tuple[tuple[Materialization, Materialization], ...]:
        """``(old, new)`` pairs sharing a cuboid but changing block size
        or prefix-dimension restriction (a rebuild, not an in-place op)."""
        old_by_key = {m.key: m for m in self.incumbent}
        pairs = []
        for new in self.candidate:
            old = old_by_key.get(new.key)
            if old is not None and (
                old.block_size != new.block_size
                or old.prefix_dims != new.prefix_dims
            ):
                pairs.append((old, new))
        return tuple(pairs)

    @property
    def is_noop(self) -> bool:
        """Whether the candidate is materially identical to the incumbent."""
        return not (self.builds or self.drops or self.resizes)

    @property
    def gain(self) -> float:
        """Modeled cost reduction per window horizon (may be ≤ 0)."""
        return self.incumbent_cost - self.candidate_cost

    @property
    def improvement_ratio(self) -> float:
        """``incumbent_cost / candidate_cost`` (1.0 when both are zero)."""
        if self.candidate_cost <= 0:
            return 1.0 if self.incumbent_cost <= 0 else float("inf")
        return self.incumbent_cost / self.candidate_cost

    @property
    def should_swap(self) -> bool:
        """Actuate only when the change clears the hysteresis threshold.

        A no-op never swaps; otherwise the modeled improvement ratio must
        reach ``hysteresis`` (e.g. 1.15 = "at least 15% better"), which
        keeps the controller from thrashing between near-tied plans on
        workload noise.
        """
        return (not self.is_noop) and (
            self.improvement_ratio >= self.hysteresis
        )

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready view (the serving layer's ``/advise`` payload)."""

        def _member(m: Materialization) -> dict[str, object]:
            return {
                "key": list(m.key),
                "block_size": m.block_size,
                "space": m.space,
                "prefix_dims": (
                    None if m.prefix_dims is None else list(m.prefix_dims)
                ),
            }

        return {
            "shape": list(self.shape),
            "incumbent": [_member(m) for m in self.incumbent],
            "candidate": [_member(m) for m in self.candidate],
            "builds": [_member(m) for m in self.builds],
            "drops": [_member(m) for m in self.drops],
            "resizes": [
                {"old": _member(a), "new": _member(b)}
                for a, b in self.resizes
            ],
            "incumbent_cost": self.incumbent_cost,
            "candidate_cost": self.candidate_cost,
            "build_cost": self.build_cost,
            "gain": self.gain,
            "improvement_ratio": self.improvement_ratio,
            "hysteresis": self.hysteresis,
            "should_swap": self.should_swap,
            "reason": self.reason,
        }

    def report(self) -> str:
        """A human-readable one-screen summary of the recommendation."""
        lines = [
            f"Design delta for a {'×'.join(map(str, self.shape))} cube:",
            f"  incumbent cost {self.incumbent_cost:.1f} → candidate "
            f"{self.candidate_cost:.1f} "
            f"(ratio {self.improvement_ratio:.2f}, "
            f"hysteresis {self.hysteresis:.2f})",
            f"  one-off build cost {self.build_cost:.0f}",
        ]
        for m in self.builds:
            lines.append(f"  + build ⟨{m.key}⟩ b={m.block_size}")
        for old, new in self.resizes:
            lines.append(
                f"  ~ resize ⟨{new.key}⟩ b={old.block_size}"
                f"→{new.block_size}"
            )
        for m in self.drops:
            lines.append(f"  - drop ⟨{m.key}⟩ b={m.block_size}")
        if self.is_noop:
            lines.append("  (no change recommended)")
        verdict = "SWAP" if self.should_swap else "HOLD"
        lines.append(f"  verdict: {verdict}" + (
            f" — {self.reason}" if self.reason else ""
        ))
        return "\n".join(lines)


def _hold(
    shape: tuple[int, ...],
    incumbent: tuple[Materialization, ...],
    hysteresis: float,
    reason: str,
) -> DesignDelta:
    """A keep-the-incumbent delta (the graceful-degradation path)."""
    return DesignDelta(
        shape=shape,
        incumbent=incumbent,
        candidate=incumbent,
        incumbent_cost=0.0,
        candidate_cost=0.0,
        build_cost=0.0,
        hysteresis=hysteresis,
        reason=reason,
    )


def re_advise(
    snapshot: WorkloadSnapshot,
    incumbent: Sequence[Materialization],
    space_budget: float,
    *,
    max_block: int = 128,
    hysteresis: float = 1.15,
    min_query_weight: float = 1.0,
    update_batch: float = 1.0,
) -> DesignDelta:
    """Re-run the §9.2/§9.3 pipeline against a live workload window.

    This is :func:`advise`'s online sibling.  It never raises on a quiet
    window: zero-traffic (or below-threshold) snapshots return a HOLD
    delta with the incumbent unchanged, so a periodic controller can call
    it unconditionally.

    Args:
        snapshot: The observer window (decay-weighted queries + update
            mix) to optimize for.
        incumbent: The currently-installed plan; used both as the greedy
            warm start and as the comparison baseline.
        space_budget: Auxiliary cells allowed for all prefix structures.
        max_block: Largest block size the selector considers.
        hysteresis: Minimum modeled ``incumbent/candidate`` cost ratio
            before :attr:`DesignDelta.should_swap` turns true.
        min_query_weight: Minimum decayed query weight the window must
            carry before re-planning is even attempted.
        update_batch: Average updates per §5 maintenance batch (amortizes
            the Theorem-2 update cost the selector charges each plan).

    Returns:
        The recommendation; inspect :attr:`DesignDelta.should_swap`
        before actuating.
    """
    if hysteresis < 1.0:
        raise ValueError(f"hysteresis must be >= 1.0, got {hysteresis}")
    shape = tuple(int(n) for n in snapshot.shape)
    incumbent = tuple(incumbent)
    if not snapshot.has_queries():
        return _hold(shape, incumbent, hysteresis, "no queries in window")
    if snapshot.query_weight < min_query_weight:
        return _hold(
            shape,
            incumbent,
            hysteresis,
            f"window weight {snapshot.query_weight:.2f} below "
            f"threshold {min_query_weight:.2f}",
        )
    workloads = snapshot.workloads()
    if not workloads:
        # Every retained query was the all-cells singleton: nothing a
        # prefix structure could speed up.
        return _hold(
            shape, incumbent, hysteresis, "window has no range traffic"
        )
    selector = CuboidSelector(
        shape,
        workloads,
        space_budget,
        max_block=max_block,
        update_weight=snapshot.update_weight,
        update_batch=update_batch,
    )
    selection = selector.solve(initial=incumbent)
    candidate = selection.chosen
    incumbent_cost = selector.total_cost(incumbent)
    base_cells = 1
    for n in shape:
        base_cells *= n
    old_by_key = {m.key: m for m in incumbent}
    build_cost = 0.0
    for member in candidate:
        old = old_by_key.get(member.key)
        if old is not None and old.block_size == member.block_size:
            continue  # kept as-is: nothing to build
        build_cost += design_build_cost(
            selector.cuboid_cells(member.key), len(member.key), base_cells
        )
    return DesignDelta(
        shape=shape,
        incumbent=incumbent,
        candidate=candidate,
        incumbent_cost=incumbent_cost,
        candidate_cost=selection.final_cost,
        build_cost=build_cost,
        hysteresis=hysteresis,
        reason="re-planned from live window",
    )


def advise_from_snapshot(
    snapshot: WorkloadSnapshot,
    space_budget: float,
    max_block: int = 128,
    restrict_prefix_dims: bool = False,
) -> PhysicalDesign:
    """The full §9 pipeline over an observer window instead of a raw log.

    Unlike :func:`re_advise` this has no incumbent to fall back on, so a
    zero-traffic window raises just like :func:`advise` does on an empty
    log.  Weighting carries through: cuboid selection sees the window's
    decay weights, while the §9.1 diagnosis uses the retained queries.
    """
    shape = tuple(int(n) for n in snapshot.shape)
    queries = [q for q, _ in snapshot.queries]
    if not queries:
        raise ValueError("the advisor needs at least one observed query")
    lengths = active_range_lengths(queries, shape)
    heuristic_chosen, column_sums = heuristic_selection(lengths)
    exact_chosen, _ = exact_selection(lengths)
    selector = CuboidSelector(
        shape,
        snapshot.workloads(),
        space_budget,
        max_block=max_block,
        update_weight=snapshot.update_weight,
    )
    selection = selector.solve()
    if restrict_prefix_dims:
        selection = _restrict_plan_dims(selection, lengths, len(queries))
    return PhysicalDesign(
        shape=shape,
        query_count=len(queries),
        range_heavy_dims=tuple(heuristic_chosen),
        optimal_dims=tuple(exact_chosen),
        column_sums=tuple(float(v) for v in column_sums),
        selection=selection,
    )


def _restrict_plan_dims(
    selection: SelectionResult, lengths, query_count: int
) -> SelectionResult:
    """Annotate each materialization with its §9.1 dimension subset.

    Within a cuboid, a dimension keeps prefix accumulation only when the
    log's heuristic column sum reaches ``2m`` (Figure 12's threshold);
    cuboids whose every dimension is range-light keep full accumulation
    (an all-raw structure would degenerate to a scan).
    """
    from dataclasses import replace

    column_sums = lengths.sum(axis=0)
    threshold = 2 * query_count
    annotated = []
    for chosen in selection.chosen:
        subset = tuple(
            j for j in chosen.key if column_sums[j] >= threshold
        )
        if subset and subset != chosen.key:
            annotated.append(replace(chosen, prefix_dims=subset))
        else:
            annotated.append(chosen)
    return replace(selection, chosen=tuple(annotated))
