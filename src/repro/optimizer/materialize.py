"""Executing a §9 physical-design plan: materialized cuboid prefix sums.

:mod:`repro.optimizer.cuboid_selection` *chooses* a set of
``(cuboid, block size)`` prefix sums; this module *builds and serves*
them.  Each chosen cuboid's group-by array is computed from the base cube
(summing out the dimensions fixed at ``all``), a blocked prefix-sum
structure is built over it, and incoming range queries are routed to the
cheapest materialized ancestor — falling back to a scan of the base cube
when no ancestor is materialized.

This closes the §9 loop: the selector's cost model can be validated
against real access counts (``benchmarks/bench_materialized_plan.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro._util import Box
from repro.cube.cuboid import CuboidKey, is_ancestor
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.optimizer.cost_model import boundary_cells_per_surface
from repro.optimizer.cuboid_selection import Materialization
from repro.query.ranges import RangeQuery, SpecKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.batch_update import PointUpdate
    from repro.core.blocked import BlockedPrefixSumCube
    from repro.core.blocked_partial import BlockedPartialPrefixSumCube
    from repro.index.backend import ArrayBackend


@dataclass
class MaterializedCuboid:
    """One built cuboid: its key and the prefix structure over it."""

    key: CuboidKey
    structure: BlockedPrefixSumCube | BlockedPartialPrefixSumCube

    @property
    def block_size(self) -> int:
        """Block size the structure was built with."""
        return self.structure.block_size


class MaterializedCuboidSet:
    """A servable set of cuboid prefix sums (the executed §9 plan).

    Args:
        cube: The base measure cube ``A`` (retained for fallback scans).
        plan: Materializations to build, e.g. ``SelectionResult.chosen``.
        backend: Array backend every cuboid structure allocates through
            (pass a :class:`~repro.index.MemmapBackend` to spill the
            whole plan out of core).
    """

    def __init__(
        self,
        cube: np.ndarray,
        plan: Sequence[Materialization],
        backend: ArrayBackend | None = None,
    ) -> None:
        self.base = np.array(cube, copy=True)
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.backend = backend
        self.plan: tuple[Materialization, ...] = tuple(plan)
        self.cuboids: list[MaterializedCuboid] = []
        for chosen in plan:
            if not chosen.key:
                raise ValueError("cannot materialize the empty cuboid")
            if chosen.key[-1] >= self.ndim:
                raise ValueError(
                    f"cuboid {chosen.key} exceeds a {self.ndim}-d cube"
                )
            dropped = tuple(
                j for j in range(self.ndim) if j not in set(chosen.key)
            )
            group_by = (
                self.base.sum(axis=dropped) if dropped else self.base
            )
            structure = chosen.index_spec().build(
                group_by, backend=backend
            )
            self.cuboids.append(
                MaterializedCuboid(chosen.key, structure)
            )

    @classmethod
    def from_accumulated(
        cls,
        base: np.ndarray,
        plan: Sequence[Materialization],
        structures: Sequence[BlockedPrefixSumCube | BlockedPartialPrefixSumCube],
        backend: ArrayBackend | None = None,
    ) -> MaterializedCuboidSet:
        """Assemble a set whose structures were built elsewhere.

        The streaming ingest builder (:mod:`repro.ingest`) accumulates
        every cuboid's group-by cells in one pass over the record stream
        and finalizes each structure in place; this constructor adopts
        those structures — and the base cube, *without* the defensive
        copy ``__init__`` takes — so an out-of-core build never holds a
        second ``N``-cell array.

        Args:
            base: The accumulated base cube (adopted as-is; for spilled
                ingests this is a memmap).
            plan: The materializations, aligned with ``structures``.
            structures: One built structure per plan entry.
            backend: The backend the accumulators were allocated
                through; retained so :meth:`release` can reclaim the
                whole build.
        """
        plan = tuple(plan)
        if len(plan) != len(structures):
            raise ValueError(
                f"{len(plan)} materializations but {len(structures)} "
                "built structures"
            )
        base = np.asarray(base)
        self = cls.__new__(cls)
        self.base = base
        self.shape = tuple(int(n) for n in base.shape)
        self.ndim = base.ndim
        self.backend = backend
        self.plan = plan
        self.cuboids = [
            MaterializedCuboid(chosen.key, structure)
            for chosen, structure in zip(plan, structures)
        ]
        return self

    def release(self) -> int:
        """Retire this set's backend-held arrays (spill files, handles).

        Drops the structures (so the mapped memory can be reclaimed by
        refcounting) and releases the backend the set was built through.
        Only call on a set whose backend is *not* shared with live
        structures — the serving layer builds every set through its own
        :meth:`~repro.index.ArrayBackend.subscope` precisely so a
        superseded plan can be reclaimed without touching the engine's
        arrays.  Returns the number of spill files released.
        """
        self.cuboids.clear()
        if self.backend is None:
            return 0
        return self.backend.release()

    @property
    def storage_cells(self) -> int:
        """Auxiliary cells held across every materialized structure."""
        return sum(c.structure.storage_cells for c in self.cuboids)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, query: RangeQuery) -> MaterializedCuboid | None:
        """The cheapest materialized ancestor for a query, if any.

        Candidates are cuboids whose dimension set covers every dimension
        the query constrains; the model cost ``2^{d_c} + S·F(b_c)`` (with
        the query's own surface) picks among them — the same rule the
        selector's cost accounting uses.
        """
        key = query.cuboid_key(self.shape)
        best: tuple[float, MaterializedCuboid] | None = None
        surface = self._query_surface(query)
        for cuboid in self.cuboids:
            if not is_ancestor(cuboid.key, key):
                continue
            cost = 2.0 ** len(cuboid.key) + surface * (
                boundary_cells_per_surface(cuboid.block_size)
            )
            if best is None or cost < best[0]:
                best = (cost, cuboid)
        return None if best is None else best[1]

    def _query_surface(self, query: RangeQuery) -> float:
        lengths = [
            float(spec.length(n))
            for spec, n in zip(query.specs, self.shape)
            if spec.kind is not SpecKind.ALL
        ]
        if not lengths:
            return 0.0
        volume = 1.0
        for x in lengths:
            volume *= x
        return sum(2.0 * volume / x for x in lengths)

    def _project_query(
        self, query: RangeQuery, cuboid: MaterializedCuboid
    ) -> Box:
        """The query's box in a cuboid's own (reduced) coordinates.

        Dimensions of the cuboid the query leaves at ``all`` span their
        full extent; dimensions the query constrains carry their resolved
        bounds.  Dimensions *outside* the cuboid were summed out during
        materialization, which is exactly what ``all`` means.
        """
        lo = []
        hi = []
        for position, j in enumerate(cuboid.key):
            bounds = query.specs[j].resolve(self.shape[j])
            size = cuboid.structure.shape[position]
            assert size == self.shape[j]
            lo.append(bounds[0])
            hi.append(bounds[1])
        return Box(tuple(lo), tuple(hi))

    def range_sum(
        self,
        query: RangeQuery,
        counter: AccessCounter = NULL_COUNTER,
    ) -> object:
        """Answer a range-sum via the routed cuboid (or a base scan)."""
        if query.ndim != self.ndim:
            raise ValueError(
                f"query has {query.ndim} dims, cube has {self.ndim}"
            )
        cuboid = self.route(query)
        if cuboid is None:
            box = query.to_box(self.shape)
            counter.count_cube(box.volume)
            return self.base[box.slices()].sum()
        return cuboid.structure.range_sum(
            self._project_query(query, cuboid), counter
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def apply_updates(self, updates: Sequence[PointUpdate]) -> None:
        """Propagate a batch of base-cube point updates to every
        materialized cuboid (§5 run per structure).

        Each update's index projects onto a cuboid by dropping the
        summed-out coordinates; deltas colliding on the same projected
        cell merge before the per-structure batch update runs.
        """
        from repro.core.batch_update import (
            PointUpdate,
            combine_duplicate_updates,
        )

        for update in updates:
            self.base[update.index] += update.delta
        for cuboid in self.cuboids:
            projected = [
                PointUpdate(
                    tuple(update.index[j] for j in cuboid.key),
                    update.delta,
                )
                for update in updates
            ]
            merged = combine_duplicate_updates(
                projected, cuboid.structure.operator
            )
            cuboid.structure.apply_updates(merged)
