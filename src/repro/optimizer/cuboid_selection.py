"""Greedy cuboid + block-size selection under a space budget (paper §9.2).

Given a query log bucketed by cuboid (each query belongs to the cuboid of
the dimensions it constrains), a space limit, and the cost model of §8,
pick the set of (cuboid, block size) prefix sums maximizing the benefit —
the reduction in total query cost.  The problem is NP-complete (reduction
from Set-Cover), so the paper's Figure 13 gives a greedy algorithm plus a
fine-tuning pass:

* **greedy**: repeatedly add the not-yet-chosen cuboid whose best block
  size yields the highest benefit/space ratio, until the budget is spent
  or no addition helps;
* **fine-tuning**: repeatedly try dropping one chosen cuboid and
  re-running the greedy fill — a drop can free space for a better
  combination (e.g. once ⟨d1⟩ gets its own prefix sum, the one on
  ⟨d1, d2⟩ may stop paying its way).

A materialized cuboid serves itself and every descendant cuboid: a query
on ⟨d1⟩ is answered by the prefix sum on ⟨d1, d2⟩ with ``d2`` spanning its
full (block-aligned) range, at that structure's ``2^{d_c} + S·F(b)``
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cube.cuboid import CuboidKey, all_cuboids, is_ancestor
from repro.optimizer.cost_model import (
    boundary_cells_per_surface,
    materialization_space,
)
from repro.query.ranges import RangeQuery
from repro.query.stats import QueryStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.registry import IndexSpec


@dataclass(frozen=True)
class CuboidWorkload:
    """Aggregated query statistics for one cuboid of the log (§9)."""

    key: CuboidKey
    stats: QueryStatistics  # average lengths over the cuboid's dimensions
    query_count: int


@dataclass(frozen=True)
class Materialization:
    """One chosen prefix sum: a cuboid, its block size, and (optionally)
    the §9.1 restriction of the prefix accumulation to a subset of the
    cuboid's dimensions (``None`` = accumulate along all of them)."""

    key: CuboidKey
    block_size: int
    space: float
    prefix_dims: CuboidKey | None = None

    def index_spec(self) -> IndexSpec:
        """The registry spec that executes this choice (cuboid-local).

        ``prefix_dims`` are base-cube dimension numbers; the spec carries
        them translated into the cuboid's own axis positions, ready for
        :meth:`~repro.index.IndexSpec.build` over the group-by array.
        """
        from repro.index.registry import IndexSpec

        if self.prefix_dims is None:
            return IndexSpec.of(
                "blocked_prefix_sum", block_size=self.block_size
            )
        invalid = set(self.prefix_dims) - set(self.key)
        if invalid:
            raise ValueError(
                f"prefix dims {sorted(invalid)} are not part of "
                f"cuboid {self.key}"
            )
        positions = tuple(self.key.index(j) for j in self.prefix_dims)
        return IndexSpec.of(
            "blocked_partial_prefix_sum",
            prefix_dims=positions,
            block_size=self.block_size,
        )


@dataclass(frozen=True)
class SelectionResult:
    """Everything the selector decided, with its cost accounting."""

    chosen: tuple[Materialization, ...]
    total_space: float
    baseline_cost: float
    final_cost: float

    @property
    def benefit(self) -> float:
        """Total query-cost reduction achieved."""
        return self.baseline_cost - self.final_cost


def workloads_from_log(
    queries: Sequence[RangeQuery], shape: Sequence[int]
) -> list[CuboidWorkload]:
    """Bucket a query log by cuboid and average each bucket's statistics.

    *"Queries with ranges on dimensions d1 and d2 and all on dimension d3
    will be assigned to the cuboid <d1, d2>"* (§9).
    """
    shape = tuple(int(n) for n in shape)
    buckets: dict[CuboidKey, list[QueryStatistics]] = {}
    for query in queries:
        key = query.cuboid_key(shape)
        if not key:
            continue  # the all-cells singleton query needs no prefix sums
        lengths = tuple(
            float(query.specs[j].length(shape[j])) for j in key
        )
        buckets.setdefault(key, []).append(
            QueryStatistics.from_lengths(lengths)
        )
    workloads = []
    for key, stats_list in sorted(buckets.items()):
        mean = tuple(
            sum(s.lengths[i] for s in stats_list) / len(stats_list)
            for i in range(len(key))
        )
        workloads.append(
            CuboidWorkload(
                key, QueryStatistics.from_lengths(mean), len(stats_list)
            )
        )
    return workloads


class CuboidSelector:
    """The Figure 13 algorithm over a workload and a space budget.

    Args:
        cube_shape: Rank-domain shape of the base cube.
        workloads: Per-cuboid averaged query statistics.
        space_limit: Budget in auxiliary cells.
        max_block: Largest block size considered in the per-cuboid scan.
        universe: Candidate cuboids; defaults to every non-empty cuboid.
    """

    def __init__(
        self,
        cube_shape: Sequence[int],
        workloads: Sequence[CuboidWorkload],
        space_limit: float,
        max_block: int = 128,
        universe: Sequence[CuboidKey] | None = None,
    ) -> None:
        self.shape = tuple(int(n) for n in cube_shape)
        self.workloads = tuple(workloads)
        self.space_limit = float(space_limit)
        self.max_block = int(max_block)
        if universe is None:
            universe = all_cuboids(len(self.shape))
        # Only ancestors of some workload cuboid can ever help.
        self.universe = [
            key
            for key in universe
            if any(is_ancestor(key, w.key) for w in self.workloads)
        ]

    # -- cost accounting ------------------------------------------------

    def cuboid_cells(self, key: CuboidKey) -> int:
        """Dense cell count N of a cuboid."""
        cells = 1
        for j in key:
            cells *= self.shape[j]
        return cells

    def _serve_cost(
        self, workload: CuboidWorkload, key: CuboidKey, block_size: int
    ) -> float:
        """Cost of one of the workload's queries via a materialized
        ancestor: ``2^{d_c} + S·F(b)`` with the query's own surface."""
        f_b = boundary_cells_per_surface(block_size)
        return 2.0 ** len(key) + workload.stats.surface * f_b

    def _query_cost(
        self,
        workload: CuboidWorkload,
        solution: Sequence[Materialization],
    ) -> float:
        """Best per-query cost for a workload under a solution set."""
        cost = workload.stats.volume  # the naive fallback
        for chosen in solution:
            if is_ancestor(chosen.key, workload.key):
                cost = min(
                    cost,
                    self._serve_cost(
                        workload, chosen.key, chosen.block_size
                    ),
                )
        return cost

    def total_cost(self, solution: Sequence[Materialization]) -> float:
        """Total workload cost under a solution set."""
        return sum(
            w.query_count * self._query_cost(w, solution)
            for w in self.workloads
        )

    # -- the greedy core -------------------------------------------------

    def _best_for_cuboid(
        self,
        key: CuboidKey,
        solution: Sequence[Materialization],
        remaining_space: float,
        current_cost: float,
    ) -> tuple[Materialization, float] | None:
        """Best block size for one candidate cuboid given the solution.

        Returns the materialization and its benefit, or ``None`` when no
        block size fits the remaining budget with positive benefit.
        """
        ndim = len(key)
        best: tuple[Materialization, float] | None = None
        block = 1
        while block <= self.max_block:
            space = materialization_space(
                self.cuboid_cells(key), ndim, block
            )
            if space <= remaining_space:
                trial = list(solution) + [
                    Materialization(key, block, space)
                ]
                benefit = current_cost - self.total_cost(trial)
                if benefit > 0:
                    ratio = benefit / space
                    if best is None or ratio > best[1] / best[0].space:
                        best = (Materialization(key, block, space), benefit)
            block += 1
        return best

    def _greedy_fill(
        self, solution: list[Materialization]
    ) -> list[Materialization]:
        """Add best-ratio cuboids until the budget or the benefit runs out."""
        solution = list(solution)
        while True:
            used = sum(m.space for m in solution)
            remaining = self.space_limit - used
            if remaining <= 0:
                break
            current_cost = self.total_cost(solution)
            taken = {m.key for m in solution}
            best: tuple[Materialization, float] | None = None
            for key in self.universe:
                if key in taken:
                    continue
                candidate = self._best_for_cuboid(
                    key, solution, remaining, current_cost
                )
                if candidate is None:
                    continue
                if (
                    best is None
                    or candidate[1] / candidate[0].space
                    > best[1] / best[0].space
                ):
                    best = candidate
            if best is None:
                break
            solution.append(best[0])
        return solution

    def _spend_surplus(
        self, solution: list[Materialization]
    ) -> list[Materialization]:
        """Shrink chosen block sizes while budget remains (an extension).

        Figure 13's greedy maximizes benefit/*space*, so with an abundant
        budget it happily leaves most of it unspent on coarse blocks.
        This pass re-invests the surplus: each chosen cuboid's block size
        is lowered as long as the finer structure still fits and strictly
        reduces the total cost.
        """
        solution = list(solution)
        changed = True
        while changed:
            changed = False
            used = sum(m.space for m in solution)
            current_cost = self.total_cost(solution)
            for i, chosen in enumerate(solution):
                for block in range(chosen.block_size - 1, 0, -1):
                    space = materialization_space(
                        self.cuboid_cells(chosen.key), len(chosen.key), block
                    )
                    if used - chosen.space + space > self.space_limit:
                        continue
                    trial = list(solution)
                    trial[i] = Materialization(chosen.key, block, space)
                    if self.total_cost(trial) < current_cost - 1e-9:
                        solution = trial
                        changed = True
                        break
                if changed:
                    break
        return solution

    def solve(
        self, fine_tune: bool = True, spend_surplus: bool = True
    ) -> SelectionResult:
        """Run greedy selection, the Figure 13 fine-tuning loop, and the
        surplus-spending refinement.

        Args:
            fine_tune: Run the drop-and-refill loop of Figure 13.
            spend_surplus: Re-invest leftover budget into finer blocks
                (set ``False`` for the paper-literal algorithm).
        """
        baseline = self.total_cost([])
        solution = self._greedy_fill([])
        if fine_tune:
            improved = True
            while improved:
                improved = False
                current_cost = self.total_cost(solution)
                for victim in list(solution):
                    trimmed = [m for m in solution if m is not victim]
                    trial = self._greedy_fill(trimmed)
                    if self.total_cost(trial) < current_cost - 1e-9:
                        solution = trial
                        improved = True
                        break
        if spend_surplus:
            solution = self._spend_surplus(solution)
        return SelectionResult(
            chosen=tuple(solution),
            total_space=sum(m.space for m in solution),
            baseline_cost=baseline,
            final_cost=self.total_cost(solution),
        )
