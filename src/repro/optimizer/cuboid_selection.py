"""Greedy cuboid + block-size selection under a space budget (paper §9.2).

Given a query log bucketed by cuboid (each query belongs to the cuboid of
the dimensions it constrains), a space limit, and the cost model of §8,
pick the set of (cuboid, block size) prefix sums maximizing the benefit —
the reduction in total query cost.  The problem is NP-complete (reduction
from Set-Cover), so the paper's Figure 13 gives a greedy algorithm plus a
fine-tuning pass:

* **greedy**: repeatedly add the not-yet-chosen cuboid whose best block
  size yields the highest benefit/space ratio, until the budget is spent
  or no addition helps;
* **fine-tuning**: repeatedly try dropping one chosen cuboid and
  re-running the greedy fill — a drop can free space for a better
  combination (e.g. once ⟨d1⟩ gets its own prefix sum, the one on
  ⟨d1, d2⟩ may stop paying its way).

A materialized cuboid serves itself and every descendant cuboid: a query
on ⟨d1⟩ is answered by the prefix sum on ⟨d1, d2⟩ with ``d2`` spanning its
full (block-aligned) range, at that structure's ``2^{d_c} + S·F(b)``
cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.cube.cuboid import CuboidKey, all_cuboids, is_ancestor
from repro.optimizer.cost_model import (
    blocked_update_cost,
    boundary_cells_per_surface,
    materialization_space,
)
from repro.query.ranges import RangeQuery
from repro.query.stats import QueryStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.registry import IndexSpec


@dataclass(frozen=True)
class CuboidWorkload:
    """Aggregated query statistics for one cuboid of the log (§9).

    ``query_count`` is ``N_Q`` — a plain tally for a batch log, or a
    decay-weighted (fractional) tally when the workload comes from a
    :class:`~repro.query.observer.WorkloadObserver` window.
    """

    key: CuboidKey
    stats: QueryStatistics  # average lengths over the cuboid's dimensions
    query_count: float


@dataclass(frozen=True)
class Materialization:
    """One chosen prefix sum: a cuboid, its block size, and (optionally)
    the §9.1 restriction of the prefix accumulation to a subset of the
    cuboid's dimensions (``None`` = accumulate along all of them)."""

    key: CuboidKey
    block_size: int
    space: float
    prefix_dims: CuboidKey | None = None

    def index_spec(self) -> IndexSpec:
        """The registry spec that executes this choice (cuboid-local).

        ``prefix_dims`` are base-cube dimension numbers; the spec carries
        them translated into the cuboid's own axis positions, ready for
        :meth:`~repro.index.IndexSpec.build` over the group-by array.
        """
        from repro.index.registry import IndexSpec

        if self.prefix_dims is None:
            return IndexSpec.of(
                "blocked_prefix_sum", block_size=self.block_size
            )
        invalid = set(self.prefix_dims) - set(self.key)
        if invalid:
            raise ValueError(
                f"prefix dims {sorted(invalid)} are not part of "
                f"cuboid {self.key}"
            )
        positions = tuple(self.key.index(j) for j in self.prefix_dims)
        return IndexSpec.of(
            "blocked_partial_prefix_sum",
            prefix_dims=positions,
            block_size=self.block_size,
        )


@dataclass(frozen=True)
class SelectionResult:
    """Everything the selector decided, with its cost accounting."""

    chosen: tuple[Materialization, ...]
    total_space: float
    baseline_cost: float
    final_cost: float

    @property
    def benefit(self) -> float:
        """Total query-cost reduction achieved."""
        return self.baseline_cost - self.final_cost


def workloads_from_log(
    queries: Sequence[RangeQuery], shape: Sequence[int]
) -> list[CuboidWorkload]:
    """Bucket a query log by cuboid and average each bucket's statistics.

    *"Queries with ranges on dimensions d1 and d2 and all on dimension d3
    will be assigned to the cuboid <d1, d2>"* (§9).
    """
    return workloads_from_weighted(
        [(query, 1.0) for query in queries], shape
    )


def workloads_from_weighted(
    weighted: Sequence[tuple[RangeQuery, float]],
    shape: Sequence[int],
) -> list[CuboidWorkload]:
    """The weighted form of :func:`workloads_from_log`.

    Each query carries a weight (the exponential-decay weight of a
    :class:`~repro.query.observer.WorkloadObserver` window); bucket
    statistics are weight-averaged and ``query_count`` becomes the
    bucket's total weight, so recent traffic outvotes stale traffic in
    exactly the proportion the observer's decay dictates.
    """
    shape = tuple(int(n) for n in shape)
    buckets: dict[CuboidKey, list[tuple[QueryStatistics, float]]] = {}
    for query, weight in weighted:
        if weight <= 0:
            continue  # fully decayed entries carry no signal
        key = query.cuboid_key(shape)
        if not key:
            continue  # the all-cells singleton query needs no prefix sums
        lengths = tuple(
            float(query.specs[j].length(shape[j])) for j in key
        )
        buckets.setdefault(key, []).append(
            (QueryStatistics.from_lengths(lengths), float(weight))
        )
    workloads = []
    for key, entries in sorted(buckets.items()):
        total = sum(w for _, w in entries)
        mean = tuple(
            sum(w * s.lengths[i] for s, w in entries) / total
            for i in range(len(key))
        )
        workloads.append(
            CuboidWorkload(
                key, QueryStatistics.from_lengths(mean), total
            )
        )
    return workloads


class CuboidSelector:
    """The Figure 13 algorithm over a workload and a space budget.

    Args:
        cube_shape: Rank-domain shape of the base cube.
        workloads: Per-cuboid averaged query statistics.
        space_limit: Budget in auxiliary cells.
        max_block: Largest block size considered in the per-cuboid scan.
        universe: Candidate cuboids; defaults to every non-empty cuboid.
        update_weight: Expected point updates over the same horizon the
            workload's query counts cover (a decay-weighted tally when
            fed from an observer window).  Every materialized structure
            pays Theorem-2 maintenance for every update, so a non-zero
            weight penalizes fine blocks and marginal cuboids — the §5
            update-vs-query tradeoff, folded into selection.
        update_batch: Average updates buffered per §5 batch (amortizes
            maintenance; ``1`` models unbatched updates).
    """

    def __init__(
        self,
        cube_shape: Sequence[int],
        workloads: Sequence[CuboidWorkload],
        space_limit: float,
        max_block: int = 128,
        universe: Sequence[CuboidKey] | None = None,
        update_weight: float = 0.0,
        update_batch: float = 1.0,
    ) -> None:
        self.shape = tuple(int(n) for n in cube_shape)
        self.workloads = tuple(workloads)
        self.space_limit = float(space_limit)
        self.max_block = int(max_block)
        self.update_weight = float(update_weight)
        self.update_batch = float(update_batch)
        if self.update_weight < 0:
            raise ValueError(
                f"update_weight must be >= 0, got {update_weight}"
            )
        if universe is None:
            universe = all_cuboids(len(self.shape))
        # Only ancestors of some workload cuboid can ever help.
        self.universe = [
            key
            for key in universe
            if any(is_ancestor(key, w.key) for w in self.workloads)
        ]

    # -- cost accounting ------------------------------------------------

    def cuboid_cells(self, key: CuboidKey) -> int:
        """Dense cell count N of a cuboid."""
        cells = 1
        for j in key:
            cells *= self.shape[j]
        return cells

    def _serve_cost(
        self, workload: CuboidWorkload, key: CuboidKey, block_size: int
    ) -> float:
        """Cost of one of the workload's queries via a materialized
        ancestor: ``2^{d_c} + S·F(b)`` with the query's own surface."""
        f_b = boundary_cells_per_surface(block_size)
        return 2.0 ** len(key) + workload.stats.surface * f_b

    def _query_cost(
        self,
        workload: CuboidWorkload,
        solution: Sequence[Materialization],
    ) -> float:
        """Best per-query cost for a workload under a solution set."""
        cost = workload.stats.volume  # the naive fallback
        for chosen in solution:
            if is_ancestor(chosen.key, workload.key):
                cost = min(
                    cost,
                    self._serve_cost(
                        workload, chosen.key, chosen.block_size
                    ),
                )
        return cost

    def maintenance_cost(
        self, solution: Sequence[Materialization]
    ) -> float:
        """Theorem-2 update cost of keeping a solution's structures fresh.

        Every base-cube point update projects onto *every* materialized
        cuboid (:meth:`MaterializedCuboidSet.apply_updates`), so each
        structure pays :func:`blocked_update_cost` per expected update.
        """
        if self.update_weight <= 0:
            return 0.0
        return self.update_weight * sum(
            blocked_update_cost(
                self.cuboid_cells(m.key),
                len(m.key),
                m.block_size,
                self.update_batch,
            )
            for m in solution
        )

    def total_cost(self, solution: Sequence[Materialization]) -> float:
        """Total workload cost (queries + update maintenance) under a
        solution set."""
        return (
            sum(
                w.query_count * self._query_cost(w, solution)
                for w in self.workloads
            )
            + self.maintenance_cost(solution)
        )

    # -- the greedy core -------------------------------------------------

    def _best_for_cuboid(
        self,
        key: CuboidKey,
        solution: Sequence[Materialization],
        remaining_space: float,
        current_cost: float,
    ) -> tuple[Materialization, float] | None:
        """Best block size for one candidate cuboid given the solution.

        Returns the materialization and its benefit, or ``None`` when no
        block size fits the remaining budget with positive benefit.
        """
        ndim = len(key)
        best: tuple[Materialization, float] | None = None
        block = 1
        while block <= self.max_block:
            space = materialization_space(
                self.cuboid_cells(key), ndim, block
            )
            if space <= remaining_space:
                trial = list(solution) + [
                    Materialization(key, block, space)
                ]
                benefit = current_cost - self.total_cost(trial)
                if benefit > 0:
                    ratio = benefit / space
                    if best is None or ratio > best[1] / best[0].space:
                        best = (Materialization(key, block, space), benefit)
            block += 1
        return best

    def _greedy_fill(
        self, solution: list[Materialization]
    ) -> list[Materialization]:
        """Add best-ratio cuboids until the budget or the benefit runs out."""
        solution = list(solution)
        while True:
            used = sum(m.space for m in solution)
            remaining = self.space_limit - used
            if remaining <= 0:
                break
            current_cost = self.total_cost(solution)
            taken = {m.key for m in solution}
            best: tuple[Materialization, float] | None = None
            for key in self.universe:
                if key in taken:
                    continue
                candidate = self._best_for_cuboid(
                    key, solution, remaining, current_cost
                )
                if candidate is None:
                    continue
                if (
                    best is None
                    or candidate[1] / candidate[0].space
                    > best[1] / best[0].space
                ):
                    best = candidate
            if best is None:
                break
            solution.append(best[0])
        return solution

    def _spend_surplus(
        self, solution: list[Materialization]
    ) -> list[Materialization]:
        """Shrink chosen block sizes while budget remains (an extension).

        Figure 13's greedy maximizes benefit/*space*, so with an abundant
        budget it happily leaves most of it unspent on coarse blocks.
        This pass re-invests the surplus: each chosen cuboid's block size
        is lowered as long as the finer structure still fits and strictly
        reduces the total cost.
        """
        solution = list(solution)
        changed = True
        while changed:
            changed = False
            used = sum(m.space for m in solution)
            current_cost = self.total_cost(solution)
            for i, chosen in enumerate(solution):
                for block in range(chosen.block_size - 1, 0, -1):
                    space = materialization_space(
                        self.cuboid_cells(chosen.key), len(chosen.key), block
                    )
                    if used - chosen.space + space > self.space_limit:
                        continue
                    trial = list(solution)
                    trial[i] = Materialization(chosen.key, block, space)
                    if self.total_cost(trial) < current_cost - 1e-9:
                        solution = trial
                        changed = True
                        break
                if changed:
                    break
        return solution

    def _seed_from(
        self, initial: Sequence[Materialization]
    ) -> list[Materialization]:
        """A budget-feasible warm start derived from an incumbent plan.

        Spaces are re-derived from the current shape (an incumbent built
        under a different budget or model revision must not smuggle in
        stale accounting), then members are dropped cheapest-loss-first
        until the set fits the budget.
        """
        seeded = [
            Materialization(
                m.key,
                m.block_size,
                materialization_space(
                    self.cuboid_cells(m.key), len(m.key), m.block_size
                ),
                m.prefix_dims,
            )
            for m in initial
            if m.key and m.key[-1] < len(self.shape)
        ]
        while seeded and sum(m.space for m in seeded) > self.space_limit:
            # Evict the member whose removal hurts the workload least.
            best_victim = min(
                range(len(seeded)),
                key=lambda i: self.total_cost(
                    seeded[:i] + seeded[i + 1 :]
                ),
            )
            del seeded[best_victim]
        return seeded

    def solve(
        self,
        fine_tune: bool = True,
        spend_surplus: bool = True,
        initial: Sequence[Materialization] | None = None,
    ) -> SelectionResult:
        """Run greedy selection, the Figure 13 fine-tuning loop, and the
        surplus-spending refinement.

        Args:
            fine_tune: Run the drop-and-refill loop of Figure 13.
            spend_surplus: Re-invest leftover budget into finer blocks
                (set ``False`` for the paper-literal algorithm).
            initial: Warm-start the greedy fill from an incumbent plan
                (the online advisor's incremental mode): the fine-tuning
                loop can then *drop* incumbents the current workload no
                longer justifies instead of rebuilding from scratch.
        """
        baseline = self.total_cost([])
        seed = [] if initial is None else self._seed_from(initial)
        solution = self._greedy_fill(seed)
        if fine_tune:
            improved = True
            while improved:
                improved = False
                current_cost = self.total_cost(solution)
                for victim in list(solution):
                    trimmed = [m for m in solution if m is not victim]
                    trial = self._greedy_fill(trimmed)
                    if spend_surplus:
                        # Refilling cannot resize survivors, so a drop
                        # whose payoff lies in *finer blocks* for what
                        # remains (common when a warm-started incumbent
                        # hogs the budget) is invisible without the
                        # surplus pass inside the comparison.
                        trial = self._spend_surplus(trial)
                    if self.total_cost(trial) < current_cost - 1e-9:
                        solution = trial
                        improved = True
                        break
        if spend_surplus:
            solution = self._spend_surplus(solution)
        return SelectionResult(
            chosen=tuple(solution),
            total_space=sum(m.space for m in solution),
            baseline_cost=baseline,
            final_cost=self.total_cost(solution),
        )
