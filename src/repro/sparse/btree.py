"""A B+-tree built from scratch (paper §10.1's index substrate).

Section 10.1: for a sparse one-dimensional cube with ``b = 1`` the prefix
array ``P`` inherits the cube's sparse structure, and a range query
``(l : h)`` needs the last stored prefix at or before ``h`` and the last
stored prefix strictly before ``l`` — predecessor searches, *"we can build
a B-tree index on P"*.  This module provides that index: an order-``m``
B+-tree over integer keys with predecessor/successor search, range scans
and access counting (every node visited charges ``index_nodes``).

The tree is deliberately general (any ordered key) so the R*-tree engines
and tests can reuse it for oracles.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.instrumentation import NULL_COUNTER, AccessCounter


class _Node:
    """One B+-tree node; leaves carry values and a right-sibling link."""

    __slots__ = ("leaf", "keys", "children", "values", "next")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        self.keys: list = []
        self.children: list[_Node] = []
        self.values: list = []
        self.next: _Node | None = None


class BPlusTree:
    """An order-``m`` B+-tree mapping keys to values.

    Args:
        order: Maximum number of children per internal node (>= 3).
            Leaves hold at most ``order − 1`` entries.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError(f"order must be >= 3, got {order}")
        self.order = int(order)
        self._root = _Node(leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves (a lone leaf root has height 1)."""
        levels = 1
        node = self._root
        while not node.leaf:
            levels += 1
            node = node.children[0]
        return levels

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, key, value) -> None:
        """Insert or overwrite one key."""
        result = self._insert(self._root, key, value)
        if result is not None:
            separator, right = result
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key, value):
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        if node.leaf:
            slot = bisect.bisect_left(node.keys, key)
            if slot < len(node.keys) and node.keys[slot] == key:
                node.values[slot] = value
                return None
            node.keys.insert(slot, key)
            node.values.insert(slot, value)
            self._size += 1
            if len(node.keys) < self.order:
                return None
            return self._split_leaf(node)
        slot = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[slot], key, value)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(slot, separator)
        node.children.insert(slot + 1, right)
        if len(node.children) <= self.order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next = node.next
        node.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Node(leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _descend_to_leaf(
        self, key, counter: AccessCounter
    ) -> _Node:
        node = self._root
        counter.count_index(1)
        while not node.leaf:
            slot = bisect.bisect_right(node.keys, key)
            node = node.children[slot]
            counter.count_index(1)
        return node

    def get(self, key, default=None, counter: AccessCounter = NULL_COUNTER):
        """Exact-key lookup."""
        leaf = self._descend_to_leaf(key, counter)
        slot = bisect.bisect_left(leaf.keys, key)
        if slot < len(leaf.keys) and leaf.keys[slot] == key:
            return leaf.values[slot]
        return default

    def find_le(self, key, counter: AccessCounter = NULL_COUNTER):
        """Largest ``(k, v)`` with ``k <= key``, or ``None``.

        This is the predecessor search §10.1 needs: the last stored
        prefix sum at or before a range endpoint.  During the descent the
        nearest left-sibling subtree is remembered; if the target leaf
        holds nothing at or below ``key``, the predecessor is that
        subtree's maximum.
        """
        node = self._root
        counter.count_index(1)
        last_left: _Node | None = None
        while not node.leaf:
            slot = bisect.bisect_right(node.keys, key)
            if slot > 0:
                last_left = node.children[slot - 1]
            node = node.children[slot]
            counter.count_index(1)
        slot = bisect.bisect_right(node.keys, key) - 1
        if slot >= 0:
            return node.keys[slot], node.values[slot]
        if last_left is None:
            return None
        node = last_left
        counter.count_index(1)
        while not node.leaf:
            node = node.children[-1]
            counter.count_index(1)
        return node.keys[-1], node.values[-1]

    def find_ge(self, key, counter: AccessCounter = NULL_COUNTER):
        """Smallest ``(k, v)`` with ``k >= key``, or ``None``."""
        leaf = self._descend_to_leaf(key, counter)
        slot = bisect.bisect_left(leaf.keys, key)
        while leaf is not None:
            if slot < len(leaf.keys):
                return leaf.keys[slot], leaf.values[slot]
            leaf = leaf.next
            slot = 0
            if leaf is not None:
                counter.count_index(1)
        return None

    def items(
        self,
        lo=None,
        hi=None,
        counter: AccessCounter = NULL_COUNTER,
    ) -> Iterator[tuple]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi``, in order."""
        if lo is None:
            leaf = self._root
            counter.count_index(1)
            while not leaf.leaf:
                leaf = leaf.children[0]
                counter.count_index(1)
            slot = 0
        else:
            leaf = self._descend_to_leaf(lo, counter)
            slot = bisect.bisect_left(leaf.keys, lo)
        while leaf is not None:
            while slot < len(leaf.keys):
                key = leaf.keys[slot]
                if hi is not None and key > hi:
                    return
                yield key, leaf.values[slot]
                slot += 1
            leaf = leaf.next
            slot = 0
            if leaf is not None:
                counter.count_index(1)

    def keys(self) -> Iterator:
        """All keys in ascending order."""
        for key, _ in self.items():
            yield key

    def check_invariants(self) -> None:
        """Validate structural invariants (used by the test suite).

        Raises:
            AssertionError: On any violated invariant.
        """
        size = self._check_node(self._root, None, None, is_root=True)
        assert size == self._size, f"size mismatch {size} != {self._size}"
        keys = list(self.keys())
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._size

    def _check_node(self, node: _Node, lo, hi, is_root: bool) -> int:
        for key in node.keys:
            assert lo is None or key >= lo, "key below subtree bound"
            assert hi is None or key < hi, "key above subtree bound"
        assert node.keys == sorted(node.keys)
        if node.leaf:
            assert len(node.keys) == len(node.values)
            assert len(node.keys) <= self.order - 1 or is_root
            return len(node.keys)
        assert len(node.children) == len(node.keys) + 1
        assert len(node.children) <= self.order
        if not is_root:
            assert len(node.children) >= 2, "underfull internal node"
        total = 0
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(
                child, bounds[i], bounds[i + 1], is_root=False
            )
        return total
