"""Sparse range-sum engines (paper §10.1–10.2).

Two engines:

* :class:`SparseRangeSum1D` — the §10.1 special case: the 1-d prefix sums
  inherit the cube's sparsity; only the non-empty prefixes are stored,
  indexed by a B-tree, and ``Sum(l:h)`` is answered by two predecessor
  searches (``P(pred(h)) − P(pred(l−1))``).
* :class:`SparseRangeSumEngine` — the general §10.2 pipeline: discover
  rectangular dense regions, build a (blocked) prefix-sum array per
  region, put the region boundaries *and* the outlier points into an
  R*-tree, and answer a query as the sum of per-region prefix-sum lookups
  plus the in-range outliers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro._util import Box, check_query_box
from repro.core.blocked import BlockedPrefixSumCube
from repro.core.prefix_sum import PrefixSumCube
from repro.index.protocol import RangeSumIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.sparse.btree import BPlusTree
from repro.sparse.dense_regions import DenseRegionConfig, find_dense_regions
from repro.sparse.rtree import Rect, RStarTree
from repro.sparse.sparse_cube import SparseCube

#: Dtypes the sparse engines accept: stored values are coerced to exact
#: Python numbers, so any integer dtype works; float64 covers floats.
SPARSE_FUZZ_DTYPES = (
    "int8",
    "int16",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "uint32",
    "uint64",
    "float64",
)


def _sample_sparse_1d_params(rng, shape: tuple) -> dict:
    """Draw a blocking factor and a small B-tree order."""
    return {
        "block_size": int(rng.integers(1, 5)),
        "btree_order": int(rng.choice((4, 32))),
    }


@register_index(
    "sparse_sum_1d",
    kind="sum",
    persistable=False,
    sparse_input=True,
    fuzz_profile=FuzzProfile(
        dtypes=SPARSE_FUZZ_DTYPES,
        max_ndim=1,
        supports_updates=False,
        sample_params=_sample_sparse_1d_params,
    ),
)
class SparseRangeSum1D(RangeSumIndexMixin):
    """Sparse one-dimensional prefix sums under a B-tree (§10.1).

    With ``block_size = 1`` the index holds one cumulative sum per
    non-empty cell and a range-sum is two predecessor searches.  With
    ``block_size > 1`` (the paper's "a similar solution applies to the
    case where b > 1") cumulative sums are kept per non-empty *block*
    plus a second B-tree over the raw cells; each range endpoint then
    costs one predecessor search plus a scan of at most one partial
    block's cells.

    Args:
        cube: A one-dimensional sparse cube.
        block_size: Blocking factor ``b >= 1``.
        btree_order: Order of the B-tree indexes.
    """

    def __init__(
        self,
        cube: SparseCube,
        block_size: int = 1,
        btree_order: int = 32,
    ) -> None:
        if cube.ndim != 1:
            raise ValueError("SparseRangeSum1D requires a 1-d cube")
        if block_size < 1:
            raise ValueError(f"block size must be >= 1, got {block_size}")
        self.cube = cube
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = 1
        self.block_size = int(block_size)
        self.index = BPlusTree(order=btree_order)
        self.points: BPlusTree | None = None
        if self.block_size == 1:
            running = 0
            for (position,), value in sorted(cube.items()):
                running = running + value
                self.index.insert(position, running)
        else:
            self.points = BPlusTree(order=btree_order)
            running = 0
            current_block: int | None = None
            for (position,), value in sorted(cube.items()):
                block = position // self.block_size
                if current_block is not None and block != current_block:
                    self.index.insert(current_block, running)
                current_block = block
                running = running + value
                self.points.insert(position, value)
            if current_block is not None:
                self.index.insert(current_block, running)

    @property
    def stored_entries(self) -> int:
        """Entries held in the cumulative index (blocks or cells)."""
        return len(self.index)

    def memory_cells(self) -> int:
        """Index entries held (cumulative entries + raw-cell entries)."""
        points = 0 if self.points is None else len(self.points)
        return int(self.stored_entries + points)

    def index_params(self) -> dict:
        """Construction parameters (reported)."""
        return {"block_size": self.block_size}

    def _prefix_through(self, position: int, counter: AccessCounter):
        """``Sum(0:position)`` for the blocked variant."""
        assert self.points is not None
        block = position // self.block_size
        hit = self.index.find_le(block - 1, counter)
        total = 0 if hit is None else hit[1]
        block_start = block * self.block_size
        for _, value in self.points.items(
            lo=block_start, hi=position, counter=counter
        ):
            total = total + value
        return total

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """``Sum(l:h)`` via predecessor searches on the sparse ``P``.

        An empty range yields 0 (the SUM identity).
        """
        if check_query_box(box, self.shape):
            return 0
        return self.range_sum_unchecked(box, counter)

    def range_sum_unchecked(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """:meth:`range_sum` minus validation (batch default hook)."""
        (lo,), (hi,) = box.lo, box.hi
        if self.block_size > 1:
            total = self._prefix_through(hi, counter)
            if lo > 0:
                total = total - self._prefix_through(lo - 1, counter)
            return total
        upper = self.index.find_le(hi, counter)
        if upper is None:
            return 0
        lower = self.index.find_le(lo - 1, counter) if lo > 0 else None
        total = upper[1]
        if lower is not None:
            total = total - lower[1]
        return total


@dataclass
class _RegionIndex:
    """One dense region's prefix structure, anchored at the region's box."""

    box: Box
    structure: PrefixSumCube | BlockedPrefixSumCube


def _sample_sparse_region_params(rng, shape: tuple) -> dict:
    """Draw a region block size and a small R*-tree node capacity."""
    return {
        "block_size": int(rng.integers(1, 3)),
        "rtree_max_entries": int(rng.choice((4, 16))),
    }


@register_index(
    "sparse_region_sum",
    kind="sum",
    persistable=False,
    sparse_input=True,
    fuzz_profile=FuzzProfile(
        dtypes=SPARSE_FUZZ_DTYPES,
        max_ndim=3,
        sample_params=_sample_sparse_region_params,
    ),
)
class SparseRangeSumEngine(RangeSumIndexMixin):
    """Dense regions + per-region prefix sums + R*-tree outliers (§10.2).

    Args:
        cube: The sparse cube.
        block_size: Block size of the per-region prefix-sum arrays
            (``1`` = basic method).
        region_config: Dense-region splitter tuning.
        rtree_max_entries: R*-tree node capacity.
    """

    def __init__(
        self,
        cube: SparseCube,
        block_size: int = 1,
        region_config: DenseRegionConfig | None = None,
        rtree_max_entries: int = 16,
    ) -> None:
        self.cube = cube
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.block_size = int(block_size)
        result = find_dense_regions(
            list(cube.points()), cube.shape, region_config
        )
        self.regions: list[_RegionIndex] = []
        self.rtree = RStarTree(max_entries=rtree_max_entries)
        for number, box in enumerate(result.regions):
            dense = cube.densify(box)
            structure: PrefixSumCube | BlockedPrefixSumCube
            if block_size == 1:
                structure = PrefixSumCube(dense)
            else:
                structure = BlockedPrefixSumCube(dense, block_size)
            self.regions.append(_RegionIndex(box, structure))
            self.rtree.insert(
                Rect.from_box(box), payload=("region", number)
            )
        self._outlier_values: dict[tuple[int, ...], object] = {}
        for point in result.outliers:
            self._outlier_values[point] = cube.cells[point]
            self.rtree.insert(
                Rect.from_cell(point), payload=("point", point)
            )

    @property
    def dense_region_count(self) -> int:
        """Number of dense regions carrying prefix-sum arrays."""
        return len(self.regions)

    @property
    def outlier_count(self) -> int:
        """Number of points indexed individually in the R*-tree."""
        return self.cube.nnz - sum(
            self._region_point_count(r) for r in self.regions
        )

    def _region_point_count(self, region: _RegionIndex) -> int:
        return sum(
            1 for p in self.cube.points() if region.box.contains_point(p)
        )

    def storage_cells(self) -> int:
        """Auxiliary cells held across all per-region prefix arrays."""
        return sum(r.structure.storage_cells for r in self.regions)

    def memory_cells(self) -> int:
        """Protocol spelling of :meth:`storage_cells`."""
        return int(self.storage_cells())

    def index_params(self) -> dict:
        """Construction parameters (reported)."""
        return {"block_size": self.block_size}

    def apply_updates(self, updates: Sequence[PointUpdate]) -> int:
        """Protocol batch path: route each delta via :meth:`apply_update`.

        Returns:
            The number of updates absorbed.
        """
        for update in updates:
            self.apply_update(update.index, update.delta)
        return len(updates)

    def range_sum(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """``Sum(box)``: per-region prefix sums plus in-range outliers.

        An empty box yields 0 (the SUM identity).
        """
        if check_query_box(box, self.shape):
            return 0
        return self.range_sum_unchecked(box, counter)

    def range_sum_unchecked(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> object:
        """:meth:`range_sum` minus validation (batch default hook)."""
        total = 0
        query_rect = Rect.from_box(box)
        for rect, payload in self.rtree.search(query_rect, counter):
            if payload[0] == "region":
                region = self.regions[payload[1]]
                overlap = region.box.intersect(box)
                local = Box(
                    tuple(l - rl for l, rl in zip(overlap.lo, region.box.lo)),
                    tuple(h - rl for h, rl in zip(overlap.hi, region.box.lo)),
                )
                total = total + region.structure.range_sum(local, counter)
            else:
                _, point = payload
                if box.contains_point(point):
                    total = total + self._outlier_values[point]
        return total

    def apply_update(self, index: Sequence[int], delta: object) -> str:
        """Incrementally absorb one point update (§5 meets §10.2).

        Routing: a cell inside a dense region updates that region's
        prefix structure (the §5 batch machinery, batch of one); a known
        outlier adjusts its stored value; a brand-new cell becomes a new
        outlier in the R*-tree.  Dense regions are **not** re-discovered
        — like any physical design, the partition degrades gracefully
        under drift and is rebuilt by re-running the constructor.

        Returns:
            Which path absorbed the update: ``"region"``, ``"outlier"``
            or ``"new-outlier"``.
        """
        from repro.core.batch_update import PointUpdate

        point = tuple(int(i) for i in index)
        if len(point) != self.cube.ndim or not all(
            0 <= i < n for i, n in zip(point, self.cube.shape)
        ):
            raise ValueError(
                f"cell {index} outside the cube shape {self.cube.shape}"
            )
        self.cube.cells[point] = self.cube.cells.get(point, 0) + delta
        for region in self.regions:
            if region.box.contains_point(point):
                local = tuple(
                    i - lo for i, lo in zip(point, region.box.lo)
                )
                region.structure.apply_updates(
                    [PointUpdate(local, delta)]
                )
                return "region"
        if point in self._outlier_values:
            self._outlier_values[point] = (
                self._outlier_values[point] + delta
            )
            return "outlier"
        self._outlier_values[point] = delta
        self.rtree.insert(Rect.from_cell(point), payload=("point", point))
        return "new-outlier"
