"""An R*-tree built from scratch (Beckmann et al., cited by paper §10.2).

Section 10 uses the R*-tree twice:

* **range-sum** (§10.2): the boundaries of the discovered dense regions —
  and every outlier point outside them — go into an R*-tree; a query
  finds the intersecting dense regions and the in-range outliers;
* **range-max** (§10.3): the static ``b^d``-ary tree is replaced by the
  R*-tree, each node annotated with the max value beneath it, searched
  with the same branch-and-bound pruning (starting from the root, since a
  dynamic tree has no constant-time lowest covering node).

The implementation follows the R*-tree paper: ChooseSubtree by least
overlap enlargement at the leaf level and least area enlargement above,
the margin-driven split-axis choice, the overlap-driven split-distribution
choice, and forced reinsertion of the 30% farthest entries on first
overflow per level per insertion.

Rectangles are closed-open boxes ``[min, max)``; integer cells embed as
unit boxes via :meth:`Rect.from_cell`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from repro._util import Box
from repro.instrumentation import NULL_COUNTER, AccessCounter

#: Fraction of entries evicted by forced reinsertion (the R*-tree's p=30%).
REINSERT_FRACTION = 0.3


@dataclass(frozen=True)
class Rect:
    """An axis-aligned closed-open rectangle ``[mins, maxs)``."""

    mins: tuple[float, ...]
    maxs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.mins) != len(self.maxs):
            raise ValueError("mins and maxs must have the same length")
        if any(a > b for a, b in zip(self.mins, self.maxs)):
            raise ValueError(f"inverted rectangle {self.mins}..{self.maxs}")

    @classmethod
    def from_cell(cls, index: Sequence[int]) -> Rect:
        """The unit box of one integer cell."""
        return cls(
            tuple(float(i) for i in index),
            tuple(float(i) + 1.0 for i in index),
        )

    @classmethod
    def from_box(cls, box: Box) -> Rect:
        """The closed-open rectangle covering an inclusive integer box."""
        return cls(
            tuple(float(l) for l in box.lo),
            tuple(float(h) + 1.0 for h in box.hi),
        )

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.mins)

    @property
    def area(self) -> float:
        """Product of the extents (volume)."""
        area = 1.0
        for a, b in zip(self.mins, self.maxs):
            area *= b - a
        return area

    @property
    def margin(self) -> float:
        """Sum of the extents (the R*-tree's split-axis criterion)."""
        return sum(b - a for a, b in zip(self.mins, self.maxs))

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric center."""
        return tuple(
            (a + b) / 2.0 for a, b in zip(self.mins, self.maxs)
        )

    def union(self, other: Rect) -> Rect:
        """Smallest rectangle containing both."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.mins, other.mins)),
            tuple(max(a, b) for a, b in zip(self.maxs, other.maxs)),
        )

    def intersects(self, other: Rect) -> bool:
        """True when the interiors share any point."""
        return all(
            a < d and c < b
            for a, b, c, d in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def contains(self, other: Rect) -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return all(
            a <= c and d <= b
            for a, b, c, d in zip(
                self.mins, self.maxs, other.mins, other.maxs
            )
        )

    def overlap_area(self, other: Rect) -> float:
        """Volume of the intersection."""
        area = 1.0
        for a, b, c, d in zip(self.mins, self.maxs, other.mins, other.maxs):
            extent = min(b, d) - max(a, c)
            if extent <= 0:
                return 0.0
            area *= extent
        return area

    def enlargement(self, other: Rect) -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area - self.area

    def center_distance_sq(self, other: Rect) -> float:
        """Squared distance between centers (reinsertion ordering)."""
        return sum(
            (a - b) ** 2 for a, b in zip(self.center, other.center)
        )


class _REntry:
    """A node slot: a rectangle plus either a child node or a payload."""

    __slots__ = ("rect", "child", "payload", "value")

    def __init__(self, rect: Rect, child=None, payload=None, value=None):
        self.rect = rect
        self.child: _RNode | None = child
        self.payload = payload
        self.value = value  # max of the subtree for child entries


class _RNode:
    """One R*-tree node."""

    __slots__ = ("leaf", "entries", "level")

    def __init__(self, leaf: bool, level: int) -> None:
        self.leaf = leaf
        self.entries: list[_REntry] = []
        self.level = level

    def mbr(self) -> Rect:
        rect = self.entries[0].rect
        for entry in self.entries[1:]:
            rect = rect.union(entry.rect)
        return rect

    def max_value(self):
        values = [e.value for e in self.entries if e.value is not None]
        return max(values) if values else None


class RStarTree:
    """An R*-tree over rectangles with optional max-value augmentation.

    Args:
        max_entries: Node capacity ``M`` (>= 4).
        min_entries: Minimum fill ``m``; defaults to ``0.4·M`` per the
            R*-tree paper.
    """

    def __init__(
        self, max_entries: int = 16, min_entries: int | None = None
    ) -> None:
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = int(max_entries)
        self.min_entries = (
            max(2, int(round(0.4 * max_entries)))
            if min_entries is None
            else int(min_entries)
        )
        if not 2 <= self.min_entries <= self.max_entries // 2:
            raise ValueError(
                f"min_entries {self.min_entries} invalid for "
                f"max_entries {self.max_entries}"
            )
        self._root = _RNode(leaf=True, level=0)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Levels from root to leaves."""
        return self._root.level + 1

    @property
    def node_count(self) -> int:
        """Total nodes in the tree."""
        return sum(1 for _ in self._iter_nodes(self._root))

    def _iter_nodes(self, node: _RNode) -> Iterator[_RNode]:
        yield node
        if not node.leaf:
            for entry in node.entries:
                assert entry.child is not None
                yield from self._iter_nodes(entry.child)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def insert(self, rect: Rect, payload, value=None) -> None:
        """Insert one rectangle with a payload and optional max value."""
        entry = _REntry(rect, payload=payload, value=value)
        self._insert_entry(entry, level=0, overflowed=set())
        self._size += 1

    def insert_cell(self, index: Sequence[int], payload, value=None) -> None:
        """Insert one integer cell as its unit box."""
        self.insert(Rect.from_cell(index), payload, value)

    def _insert_entry(
        self, entry: _REntry, level: int, overflowed: set[int]
    ) -> None:
        path = self._choose_path(entry.rect, level)
        node = path[-1]
        node.entries.append(entry)
        self._refresh_path(path)
        if len(node.entries) > self.max_entries:
            self._handle_overflow(path, overflowed)

    def _choose_path(self, rect: Rect, level: int) -> list[_RNode]:
        """Descend by the R* ChooseSubtree rule down to ``level``."""
        path = [self._root]
        node = self._root
        while node.level > level:
            children_are_leaves = node.level == 1
            if children_are_leaves:
                best = min(
                    node.entries,
                    key=lambda e: (
                        self._overlap_enlargement(node, e, rect),
                        e.rect.enlargement(rect),
                        e.rect.area,
                    ),
                )
            else:
                best = min(
                    node.entries,
                    key=lambda e: (e.rect.enlargement(rect), e.rect.area),
                )
            assert best.child is not None
            node = best.child
            path.append(node)
        return path

    @staticmethod
    def _overlap_enlargement(
        node: _RNode, entry: _REntry, rect: Rect
    ) -> float:
        grown = entry.rect.union(rect)
        before = 0.0
        after = 0.0
        for other in node.entries:
            if other is entry:
                continue
            before += entry.rect.overlap_area(other.rect)
            after += grown.overlap_area(other.rect)
        return after - before

    def _refresh_path(self, path: list[_RNode]) -> None:
        """Recompute MBRs and max values bottom-up along an insert path."""
        for parent, child in zip(reversed(path[:-1]), reversed(path[1:])):
            for entry in parent.entries:
                if entry.child is child:
                    entry.rect = child.mbr()
                    entry.value = child.max_value()
                    break

    def _handle_overflow(
        self, path: list[_RNode], overflowed: set[int]
    ) -> None:
        node = path[-1]
        if node is not self._root and node.level not in overflowed:
            overflowed.add(node.level)
            self._reinsert(path, overflowed)
        else:
            self._split(path, overflowed)

    def _reinsert(self, path: list[_RNode], overflowed: set[int]) -> None:
        """Forced reinsertion: evict the 30% of entries farthest from the
        node's center and insert them again from the top."""
        node = path[-1]
        center_rect = node.mbr()
        node.entries.sort(
            key=lambda e: e.rect.center_distance_sq(center_rect),
            reverse=True,
        )
        evict_count = max(1, int(REINSERT_FRACTION * len(node.entries)))
        evicted = node.entries[:evict_count]
        node.entries = node.entries[evict_count:]
        self._refresh_path(path)
        for entry in evicted:
            self._insert_entry(entry, node.level, overflowed)

    def _split(self, path: list[_RNode], overflowed: set[int]) -> None:
        node = path[-1]
        group_a, group_b = self._choose_split(node.entries)
        node.entries = group_a
        sibling = _RNode(leaf=node.leaf, level=node.level)
        sibling.entries = group_b
        if node is self._root:
            new_root = _RNode(leaf=False, level=node.level + 1)
            for part in (node, sibling):
                new_root.entries.append(
                    _REntry(
                        part.mbr(), child=part, value=part.max_value()
                    )
                )
            self._root = new_root
            return
        parent = path[-2]
        self._refresh_path(path)
        parent.entries.append(
            _REntry(sibling.mbr(), child=sibling, value=sibling.max_value())
        )
        self._refresh_path(path[:-1])
        if len(parent.entries) > self.max_entries:
            self._handle_overflow(path[:-1], overflowed)

    def _choose_split(
        self, entries: list[_REntry]
    ) -> tuple[list[_REntry], list[_REntry]]:
        """R* split: margin-minimal axis, then overlap-minimal distribution."""
        ndim = entries[0].rect.ndim
        m = self.min_entries
        best_axis = None
        best_axis_margin = None
        for axis in range(ndim):
            margin_total = 0.0
            for sort_key in (
                lambda e: (e.rect.mins[axis], e.rect.maxs[axis]),
                lambda e: (e.rect.maxs[axis], e.rect.mins[axis]),
            ):
                ordered = sorted(entries, key=sort_key)
                for k in range(m, len(ordered) - m + 1):
                    left = _union_of(ordered[:k])
                    right = _union_of(ordered[k:])
                    margin_total += left.margin + right.margin
            if best_axis_margin is None or margin_total < best_axis_margin:
                best_axis_margin = margin_total
                best_axis = axis
        assert best_axis is not None
        best_groups = None
        best_score = None
        for sort_key in (
            lambda e: (e.rect.mins[best_axis], e.rect.maxs[best_axis]),
            lambda e: (e.rect.maxs[best_axis], e.rect.mins[best_axis]),
        ):
            ordered = sorted(entries, key=sort_key)
            for k in range(m, len(ordered) - m + 1):
                left = _union_of(ordered[:k])
                right = _union_of(ordered[k:])
                score = (
                    left.overlap_area(right),
                    left.area + right.area,
                )
                if best_score is None or score < best_score:
                    best_score = score
                    best_groups = (list(ordered[:k]), list(ordered[k:]))
        assert best_groups is not None
        return best_groups

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self, rect: Rect, counter: AccessCounter = NULL_COUNTER
    ) -> list[tuple[Rect, object]]:
        """All ``(rect, payload)`` whose rectangles intersect ``rect``."""
        results: list[tuple[Rect, object]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            counter.count_index(1)
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if node.leaf:
                    results.append((entry.rect, entry.payload))
                else:
                    assert entry.child is not None
                    stack.append(entry.child)
        return results

    def payloads_in(
        self, rect: Rect, counter: AccessCounter = NULL_COUNTER
    ) -> list[object]:
        """Payloads of all entries intersecting ``rect``."""
        return [payload for _, payload in self.search(rect, counter)]

    def max_in_region(
        self, rect: Rect, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[Rect, object, object] | None:
        """Branch-and-bound max over entries intersecting ``rect`` (§10.3).

        Nodes are expanded best-first by their annotated max value;
        subtrees whose max cannot beat the current best are pruned —
        exactly the §6 pruning rule, transplanted onto a dynamic tree
        rooted at the top (no constant-time lowest covering node here).

        Returns:
            ``(rect, payload, value)`` of the best entry, or ``None`` when
            nothing intersects.
        """
        tiebreak = itertools.count()
        heap: list[tuple[float, int, _RNode]] = []
        root_max = self._root.max_value()
        if root_max is None and self._size == 0:
            return None
        heapq.heappush(
            heap,
            (-(root_max if root_max is not None else 0), next(tiebreak),
             self._root),
        )
        best: tuple[Rect, object, object] | None = None
        while heap:
            neg_bound, _, node = heapq.heappop(heap)
            if best is not None and -neg_bound <= best[2]:
                break  # nothing left can beat the incumbent
            counter.count_index(1)
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if node.leaf:
                    if best is None or (
                        entry.value is not None and entry.value > best[2]
                    ):
                        best = (entry.rect, entry.payload, entry.value)
                else:
                    assert entry.child is not None
                    if entry.value is None:
                        continue
                    if best is None or entry.value > best[2]:
                        heapq.heappush(
                            heap,
                            (-entry.value, next(tiebreak), entry.child),
                        )
        return best

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Validate MBR containment, fill factors and max annotations."""
        count = self._check_node(self._root, is_root=True)
        assert count == self._size, f"size mismatch {count} != {self._size}"

    def _check_node(self, node: _RNode, is_root: bool) -> int:
        if not is_root:
            assert len(node.entries) >= self.min_entries, "underfull node"
        assert len(node.entries) <= self.max_entries, "overfull node"
        if node.leaf:
            assert node.level == 0
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child = entry.child
            assert child is not None
            assert child.level == node.level - 1, "broken level chain"
            assert entry.rect.contains(child.mbr()), "MBR does not cover"
            child_max = child.max_value()
            if child_max is not None or entry.value is not None:
                assert entry.value == child_max, "stale max annotation"
            total += self._check_node(child, is_root=False)
        return total


def _union_of(entries: Sequence[_REntry]) -> Rect:
    rect = entries[0].rect
    for entry in entries[1:]:
        rect = rect.union(entry.rect)
    return rect
