"""Sparse-cube engines: B+-tree, R*-tree, dense regions, sum/max (§10)."""

from repro.sparse.btree import BPlusTree
from repro.sparse.dense_regions import (
    DenseRegionConfig,
    DenseRegionResult,
    find_dense_regions,
)
from repro.sparse.rtree import Rect, RStarTree
from repro.sparse.sparse_cube import SparseCube
from repro.sparse.sparse_max import SparseRangeMaxEngine
from repro.sparse.sparse_sum import SparseRangeSum1D, SparseRangeSumEngine

__all__ = [
    "BPlusTree",
    "DenseRegionConfig",
    "DenseRegionResult",
    "Rect",
    "RStarTree",
    "SparseCube",
    "SparseRangeMaxEngine",
    "SparseRangeSum1D",
    "SparseRangeSumEngine",
    "find_dense_regions",
]
