"""Sparse range-max via a max-augmented R*-tree (paper §10.3).

*"For range-max queries, we can replace the static fixed-fanout tree
structure by any other tree structure without affecting the correctness
of the algorithm ... Thus, the R* tree is a good data structure in the
sparse data cube.  Note that in this case where a dynamic tree is used,
one needs to traverse starting from the root because the lowest-level
node covering the query region cannot be located in constant time."*

Every non-empty cell is inserted into an R*-tree whose nodes carry the
maximum value beneath them; a query runs the §6 branch-and-bound pruning
best-first from the root (see :meth:`RStarTree.max_in_region`).
"""

from __future__ import annotations

from repro._util import Box
from repro.index.protocol import RangeMaxIndexMixin
from repro.index.registry import register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.sparse.rtree import Rect, RStarTree
from repro.sparse.sparse_cube import SparseCube


@register_index(
    "sparse_max_rtree", kind="max", persistable=False, sparse_input=True
)
class SparseRangeMaxEngine(RangeMaxIndexMixin):
    """Range-max over a sparse cube's non-empty cells.

    Args:
        cube: The sparse cube.
        rtree_max_entries: R*-tree node capacity.
    """

    def __init__(
        self, cube: SparseCube, rtree_max_entries: int = 16
    ) -> None:
        self.cube = cube
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.rtree = RStarTree(max_entries=rtree_max_entries)
        for point, value in cube.items():
            self.rtree.insert(Rect.from_cell(point), payload=point,
                              value=value)

    def memory_cells(self) -> int:
        """Entries held in the R*-tree (one per non-empty cell)."""
        return int(self.cube.nnz)

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """Protocol spelling of :meth:`max_index`."""
        return self.max_index(box, counter)

    def max_index(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """``(index, value)`` of the max non-empty cell in ``box``.

        Returns ``None`` when the region holds no non-empty cell (an
        all-empty region has no defined max index in a sparse cube).
        """
        if box.ndim != self.cube.ndim:
            raise ValueError("query dimensionality mismatch")
        hit = self.rtree.max_in_region(Rect.from_box(box), counter)
        if hit is None:
            return None
        _, point, value = hit
        return point, value
