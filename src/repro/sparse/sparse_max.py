"""Sparse range-max via a max-augmented R*-tree (paper §10.3).

*"For range-max queries, we can replace the static fixed-fanout tree
structure by any other tree structure without affecting the correctness
of the algorithm ... Thus, the R* tree is a good data structure in the
sparse data cube.  Note that in this case where a dynamic tree is used,
one needs to traverse starting from the root because the lowest-level
node covering the query region cannot be located in constant time."*

Every non-empty cell is inserted into an R*-tree whose nodes carry the
maximum value beneath them; a query runs the §6 branch-and-bound pruning
best-first from the root (see :meth:`RStarTree.max_in_region`).
"""

from __future__ import annotations

from repro._util import Box, check_query_box
from repro.index.protocol import RangeMaxIndexMixin
from repro.index.registry import FuzzProfile, register_index
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.sparse.rtree import Rect, RStarTree
from repro.sparse.sparse_cube import SparseCube


def _sample_sparse_max_params(rng, shape: tuple) -> dict:
    """Draw a small R*-tree node capacity."""
    return {"rtree_max_entries": int(rng.choice((4, 16)))}


@register_index(
    "sparse_max_rtree",
    kind="max",
    persistable=False,
    sparse_input=True,
    fuzz_profile=FuzzProfile(
        dtypes=(
            "int8",
            "int16",
            "int32",
            "int64",
            "uint8",
            "uint16",
            "uint32",
            "uint64",
            "float32",
            "float64",
        ),
        operators=(),
        supports_updates=False,
        sample_params=_sample_sparse_max_params,
    ),
)
class SparseRangeMaxEngine(RangeMaxIndexMixin):
    """Range-max over a sparse cube's non-empty cells.

    Args:
        cube: The sparse cube.
        rtree_max_entries: R*-tree node capacity.
    """

    def __init__(
        self, cube: SparseCube, rtree_max_entries: int = 16
    ) -> None:
        self.cube = cube
        self.shape = tuple(int(n) for n in cube.shape)
        self.ndim = cube.ndim
        self.rtree = RStarTree(max_entries=rtree_max_entries)
        for point, value in cube.items():
            self.rtree.insert(Rect.from_cell(point), payload=point,
                              value=value)

    def memory_cells(self) -> int:
        """Entries held in the R*-tree (one per non-empty cell)."""
        return int(self.cube.nnz)

    def query(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """Protocol spelling of :meth:`max_index`."""
        return self.max_index(box, counter)

    def max_index(
        self, box: Box, counter: AccessCounter = NULL_COUNTER
    ) -> tuple[tuple[int, ...], object] | None:
        """``(index, value)`` of the max non-empty cell in ``box``.

        Returns ``None`` when the region holds no non-empty cell (an
        all-empty region has no defined max index in a sparse cube) —
        and likewise for an empty box, which covers no cell at all.
        """
        if check_query_box(box, self.shape):
            return None
        hit = self.rtree.max_in_region(Rect.from_box(box), counter)
        if hit is None:
            return None
        _, point, value = hit
        return point, value
