"""A coordinate-format sparse data cube (the §10 substrate).

OLAP cubes are canonically ~20% dense with dense sub-clusters (§1, citing
Colliat).  :class:`SparseCube` stores only the non-empty cells as a
coordinate map and offers the densification primitives the sparse engines
need: extracting a dense sub-array for one region, and iterating points.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._util import Box, full_box


class SparseCube:
    """A sparse d-dimensional cube of non-empty cells.

    Args:
        shape: Full (virtual) shape of the cube.
        cells: Mapping from cell index to (non-zero) value.
    """

    def __init__(
        self,
        shape: Sequence[int],
        cells: Mapping[tuple[int, ...], object],
    ) -> None:
        self.shape = tuple(int(n) for n in shape)
        if any(n < 1 for n in self.shape):
            raise ValueError(f"invalid shape {self.shape}")
        bounds = full_box(self.shape)
        self.cells: dict[tuple[int, ...], object] = {}
        for index, value in cells.items():
            key = tuple(int(i) for i in index)
            if len(key) != len(self.shape) or not bounds.contains_point(key):
                raise ValueError(f"cell {index} outside shape {self.shape}")
            # Coerce numpy scalars to Python numbers: downstream running
            # sums (`a + b` chains in the sparse engines) must use
            # arbitrary-precision arithmetic, not wrap in e.g. int8.
            if isinstance(value, np.generic):
                value = value.item()
            self.cells[key] = value

    @classmethod
    def from_dense(cls, cube: np.ndarray) -> SparseCube:
        """Extract the non-zero cells of a dense array."""
        cells = {}
        for index in zip(*np.nonzero(cube)):
            key = tuple(int(i) for i in index)
            cells[key] = cube[key]
        return cls(cube.shape, cells)

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of non-empty cells."""
        return len(self.cells)

    @property
    def density(self) -> float:
        """Fraction of cells that are non-empty."""
        total = 1
        for n in self.shape:
            total *= n
        return self.nnz / total

    @property
    def volume(self) -> int:
        """Total (virtual) cell count of the cube."""
        total = 1
        for n in self.shape:
            total *= n
        return total

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate the indices of the non-empty cells."""
        return iter(self.cells)

    def items(self) -> Iterable[tuple[tuple[int, ...], object]]:
        """Iterate ``(index, value)`` pairs of the non-empty cells."""
        return self.cells.items()

    def value_dtype(self) -> np.dtype:
        """The dense dtype that represents every stored value exactly.

        ``float64`` when any cell holds a float, else ``int64`` — an
        ``int64`` densification of float cells would silently truncate.
        """
        if any(
            isinstance(value, (float, np.floating))
            for value in self.cells.values()
        ):
            return np.dtype(np.float64)
        return np.dtype(np.int64)

    def densify(self, box: Box, dtype=None) -> np.ndarray:
        """Materialize the dense sub-array of one region.

        Used per dense region by the sparse range-sum engine; the full
        cube is never materialized.  ``dtype=None`` infers
        :meth:`value_dtype`.
        """
        if dtype is None:
            dtype = self.value_dtype()
        array = np.zeros(box.lengths, dtype=dtype)
        for index, value in self.cells.items():
            if box.contains_point(index):
                offset = tuple(i - l for i, l in zip(index, box.lo))
                array[offset] = value
        return array

    def to_dense(self, dtype=None) -> np.ndarray:
        """Materialize the entire cube (test oracles only)."""
        return self.densify(full_box(self.shape), dtype)

    def naive_range_sum(self, box: Box) -> object:
        """Sum over a region by scanning the coordinate map (baseline)."""
        total = 0
        for index, value in self.cells.items():
            if box.contains_point(index):
                total = total + value
        return total

    def naive_max(self, box: Box) -> tuple[tuple[int, ...], object] | None:
        """Max over a region's *non-empty* cells, or ``None`` if none."""
        best: tuple[tuple[int, ...], object] | None = None
        for index, value in self.cells.items():
            if box.contains_point(index):
                if best is None or value > best[1]:
                    best = (index, value)
        return best
