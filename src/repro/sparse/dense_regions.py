"""Finding rectangular dense regions in a sparse cube (paper §10.2).

*"we use a modified decision-tree classifier to find dense regions
(non-empty cells are considered one class and empty cells another).  The
modification ... is that the number of empty cells in a region are counted
by subtracting the number of non-empty cells from the volume of the
region.  This lets the classifier avoid materializing the full data
cube."*

The splitter here follows that recipe: a region's point set is recursively
divided by the axis-aligned binary split that minimizes the weighted Gini
impurity of the two classes, where the empty-class counts come from
``volume − nonempty`` (never from materialized cells).  Recursion stops
when a region is dense enough (its shrunk bounding box is emitted) or too
small to be worth a prefix-sum array (its points become outliers).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro._util import Box


@dataclass(frozen=True)
class DenseRegionConfig:
    """Tuning knobs of the splitter.

    Attributes:
        density_threshold: A region whose point density (within its shrunk
            bounding box) reaches this becomes a dense region.
        min_points: Regions with fewer points are declared outliers.
        max_depth: Recursion cap.
        min_gain: Minimum Gini-impurity reduction to accept a split.
    """

    density_threshold: float = 0.4
    min_points: int = 8
    max_depth: int = 24
    min_gain: float = 1e-9


@dataclass(frozen=True)
class DenseRegionResult:
    """Outcome: disjoint dense boxes plus leftover outlier points."""

    regions: tuple[Box, ...]
    outliers: tuple[tuple[int, ...], ...]


def _gini(nonempty: int, volume: int) -> float:
    """Gini impurity of the empty/non-empty two-class mix of a region."""
    if volume <= 0:
        return 0.0
    p = nonempty / volume
    return 2.0 * p * (1.0 - p)


def _bounding_box(points: np.ndarray) -> Box:
    """Tight box around a (k × d) coordinate array."""
    return Box(
        tuple(int(v) for v in points.min(axis=0)),
        tuple(int(v) for v in points.max(axis=0)),
    )


def _best_split(
    points: np.ndarray, box: Box, config: DenseRegionConfig
) -> tuple[int, int] | None:
    """The (axis, split) minimizing weighted Gini over the two halves.

    A split at position ``s`` divides ``box`` into cells with coordinate
    ``< s`` and ``>= s`` along the axis.  Candidate positions are taken
    between distinct point coordinates; empty-cell counts per side come
    from side volume minus side point count — the paper's modification.
    """
    total = len(points)
    volume = box.volume
    parent_impurity = _gini(total, volume)
    best: tuple[float, int, int] | None = None
    for axis in range(box.ndim):
        coords = np.sort(points[:, axis])
        side_volume_unit = volume // (box.hi[axis] - box.lo[axis] + 1)
        distinct = np.unique(coords)
        if len(distinct) < 2:
            continue
        # Candidate split between consecutive distinct coordinates.
        for left_coord, right_coord in zip(distinct[:-1], distinct[1:]):
            split = int(left_coord) + 1
            if right_coord > left_coord + 1:
                # Put the split against the right cluster, leaving the gap
                # (all-empty cells) on the left side.
                split = int(right_coord)
            left_points = int(np.searchsorted(coords, split, side="left"))
            right_points = total - left_points
            left_volume = side_volume_unit * (split - box.lo[axis])
            right_volume = volume - left_volume
            weighted = (
                left_volume * _gini(left_points, left_volume)
                + right_volume * _gini(right_points, right_volume)
            ) / volume
            gain = parent_impurity - weighted
            if best is None or gain > best[0]:
                best = (gain, axis, split)
    if best is None or best[0] < config.min_gain:
        return None
    return best[1], best[2]


def find_dense_regions(
    points: Sequence[Sequence[int]],
    shape: Sequence[int],
    config: DenseRegionConfig | None = None,
) -> DenseRegionResult:
    """Discover non-intersecting rectangular dense regions (§10.2).

    Args:
        points: Coordinates of the non-empty cells.
        shape: Shape of the (never materialized) full cube.
        config: Splitter tuning; defaults are suitable for the paper's
            "dense sub-clusters in a ~20% sparse cube" regime.

    Returns:
        Disjoint dense boxes (each shrunk to its points' bounding box) and
        the outlier points lying in no dense box.
    """
    config = config or DenseRegionConfig()
    shape = tuple(int(n) for n in shape)
    coords = np.asarray(list(points), dtype=np.int64)
    if coords.size == 0:
        return DenseRegionResult((), ())
    if coords.ndim != 2 or coords.shape[1] != len(shape):
        raise ValueError(
            f"points must be k × {len(shape)} coordinates, got shape "
            f"{coords.shape}"
        )
    regions: list[Box] = []
    outliers: list[tuple[int, ...]] = []
    _split_recursive(coords, config, 0, regions, outliers)
    return DenseRegionResult(tuple(regions), tuple(outliers))


def _split_recursive(
    points: np.ndarray,
    config: DenseRegionConfig,
    depth: int,
    regions: list[Box],
    outliers: list[tuple[int, ...]],
) -> None:
    if len(points) < config.min_points:
        outliers.extend(tuple(int(v) for v in p) for p in points)
        return
    box = _bounding_box(points)
    density = len(points) / box.volume
    if density >= config.density_threshold:
        regions.append(box)
        return
    if depth >= config.max_depth:
        outliers.extend(tuple(int(v) for v in p) for p in points)
        return
    split = _best_split(points, box, config)
    if split is None:
        # No separating structure left; dense enough or give up.
        outliers.extend(tuple(int(v) for v in p) for p in points)
        return
    axis, position = split
    mask = points[:, axis] < position
    left = points[mask]
    right = points[~mask]
    if len(left) == 0 or len(right) == 0:
        outliers.extend(tuple(int(v) for v in p) for p in points)
        return
    _split_recursive(left, config, depth + 1, regions, outliers)
    _split_recursive(right, config, depth + 1, regions, outliers)
