"""Serial segment-reduce / scatter machinery shared by the backends.

``segment_reduce_serial`` is the gather-into-buffer + ``ufunc.reduceat``
pattern: rather than interleaving (start, end) offsets — which makes
``reduceat`` also reduce the junk *between* runs, costing O(span) — we
gather exactly the cells the runs cover into one contiguous buffer and
reduce at monotone offsets, so the work is bounded by the cells actually
scanned.  The threaded backend reuses it per shard; the numba backend
replaces only the innermost loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import InvertibleOperator


def exclusive_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of run lengths: the ``reduceat`` offsets."""
    offsets = np.zeros(len(counts), dtype=np.int64)
    if len(counts) > 1:
        np.cumsum(counts[:-1], out=offsets[1:])
    return offsets


def expand_runs(
    starts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat cell indices covered by the runs, plus the reduce offsets.

    Args:
        starts: ``(n,)`` flat start index of each run.
        lengths: ``(n,)`` run lengths, all ``>= 1``.

    Returns:
        ``(cells, offsets)`` — the concatenated per-run cell indices and
        the exclusive offsets where each run begins inside ``cells``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    offsets = exclusive_offsets(lengths)
    total = int(lengths.sum())
    # position-within-run = global position − (run offset broadcast out).
    positions = np.arange(total, dtype=np.int64) - np.repeat(
        offsets, lengths
    )
    cells = np.repeat(starts, lengths) + positions
    return cells, offsets


def segment_reduce_serial(
    flat: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    operator: InvertibleOperator,
) -> np.ndarray:
    """Reduce each run ``flat[starts[i] : starts[i]+lengths[i]]`` with ⊕."""
    target = operator.accumulation_dtype(flat.dtype)
    if len(starts) == 0:
        return np.zeros(0, dtype=target)
    apply_ufunc = operator.apply
    if not isinstance(apply_ufunc, np.ufunc):  # pragma: no cover
        raise TypeError(
            "segment_reduce requires a ufunc operator; "
            f"{operator.name!r} is not one"
        )
    cells, offsets = expand_runs(starts, lengths)
    buffer = flat[cells].astype(target, copy=False)
    return apply_ufunc.reduceat(buffer, offsets, dtype=target)


def scatter_serial(
    target: np.ndarray,
    indices: np.ndarray,
    deltas: np.ndarray,
    operator: InvertibleOperator,
) -> None:
    """Apply ``target[i] = target[i] ⊕ delta`` for each (index, delta).

    ``ufunc.at`` is unbuffered, so duplicate indices apply sequentially —
    the same semantics as the historical per-update Python loop.  Deltas
    that numpy cannot safely cast into the target dtype (e.g. negative
    ints into an unsigned cube, or object-dtype Python scalars) fall back
    to that loop, preserving the old behaviour exactly.
    """
    apply_ufunc = operator.apply
    deltas_arr = np.asarray(deltas)
    if (
        isinstance(apply_ufunc, np.ufunc)
        and deltas_arr.dtype != object
        and np.can_cast(deltas_arr.dtype, target.dtype, "same_kind")
    ):
        apply_ufunc.at(target, indices, deltas_arr.astype(target.dtype))
        return
    flat_indices = np.asarray(indices).ravel()
    for pos, delta in zip(flat_indices.tolist(), np.ravel(deltas_arr)):
        target[pos] = operator.apply(target[pos], delta)


def flatten_updates(
    updates: object, shape: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Turn ``PointUpdate``-style records into flat (indices, deltas).

    Args:
        updates: A sequence of objects with ``.index`` (a coordinate
            tuple) and ``.delta`` attributes.
        shape: The cube shape the coordinates address.

    Returns:
        ``(indices, deltas)`` — ``(n,)`` flat int64 indices and the delta
        values as an array (object dtype when deltas are mixed Python
        scalars, which :func:`scatter_serial` handles via its fallback).
    """
    seq = list(updates)  # type: ignore[call-overload]
    if not seq:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    coords = np.array([u.index for u in seq], dtype=np.int64)
    flat = np.ravel_multi_index(tuple(coords.T), shape).astype(np.int64)
    deltas = np.array([u.delta for u in seq])
    return flat, deltas
