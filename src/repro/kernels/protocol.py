"""The narrow execution-kernel contract behind the hot query paths.

The paper's structures reduce every range aggregate to three primitive
array operations, and those primitives — not the structures — are where
all the machine time goes:

* **corner gather + combine**: read the ``K · 2^d`` Theorem-1 corners of
  a prefix array and fold them per query with the operator's ``⊕`` / ``⊖``
  algebra;
* **boundary-scan reduce**: aggregate many contiguous runs of raw cube
  cells (the §4 boundary regions, flattened batch-wide into run lists);
* **batched update scatter**: apply point deltas to the retained source
  cube before the §5 prefix machinery runs.

:class:`ExecutionKernel` is the contract for a backend implementing those
three primitives.  Structures never import a concrete backend; they call
:func:`repro.kernels.resolve_kernel` and go through this surface, so the
``numpy`` oracle, the ``threaded`` shard-and-combine pool and the
optional ``numba`` JIT all plug in behind the same three methods.

A kernel also declares ``serial_boundaries``: ``True`` means blocked
structures should keep their historical per-query boundary loop (the
``numpy`` oracle — bit-for-bit the pre-kernel code path), ``False``
means they should run the one-pass vectorized boundary machinery of
:mod:`repro.kernels.boundary`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter


@runtime_checkable
class ExecutionKernel(Protocol):
    """Contract for a pluggable execution backend (see module docstring)."""

    #: Registry name of the backend (``"numpy"``, ``"threaded"``, ...).
    name: str

    #: True when blocked structures should keep the scalar per-query
    #: boundary loop instead of the vectorized one-pass machinery.
    serial_boundaries: bool

    def corner_gather(
        self,
        prefix: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        operator: InvertibleOperator,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        """Theorem-1 corner gather + combine for ``K`` validated queries.

        Args:
            prefix: The (possibly blocked) prefix array ``P``.
            lows: Validated non-empty ``(K, d)`` inclusive lower bounds.
            highs: Validated ``(K, d)`` inclusive upper bounds.
            operator: The structure's invertible operator.
            counter: Charged one ``prefix_cells`` unit per valid corner.

        Returns:
            A ``(K,)`` array of aggregates in the accumulation dtype.
        """
        ...

    def segment_reduce(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        operator: InvertibleOperator,
    ) -> np.ndarray:
        """Reduce ``n`` contiguous runs of a flat array with ``⊕``.

        Run ``i`` covers ``flat[starts[i] : starts[i] + lengths[i]]``
        (``lengths[i] >= 1``).  Runs may appear in any order and overlap
        freely.  The caller owns the counter accounting (it knows whether
        the runs are cube cells or prefix cells).

        Returns:
            An ``(n,)`` array of per-run aggregates in the accumulation
            dtype of ``flat``.
        """
        ...

    def scatter(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        deltas: np.ndarray,
        operator: InvertibleOperator,
    ) -> None:
        """Apply point deltas to a flat array: ``t[i] = t[i] ⊕ delta``.

        Duplicate indices apply repeatedly, exactly as a sequential
        per-update loop would (``ufunc.at`` semantics).
        """
        ...
