"""The batched Theorem-1 corner primitives (gather, mask, combine).

These used to live in :mod:`repro.query.batch`; they moved here when the
kernel layer was introduced because every backend builds on them — the
``numpy`` kernel calls them directly, the ``threaded`` kernel calls them
per query shard.  :mod:`repro.query.batch` re-exports them, so existing
imports keep working.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter


@lru_cache(maxsize=None)
def corner_table(ndim: int) -> tuple[np.ndarray, np.ndarray]:
    """The cached ``(2^d, d)`` corner choices and their Theorem-1 signs.

    Row ``c`` of ``take_hi`` says, per dimension, whether corner ``c``
    reads ``h_j`` (True) or ``l_j − 1`` (False); ``signs[c]`` is ``+1``
    when the number of low choices is even, else ``−1``.

    Returns:
        ``(take_hi, signs)`` — a ``(2^d, d)`` bool array and a ``(2^d,)``
        int8 array.  Both are cached; callers must not mutate them.
    """
    if ndim < 1:
        raise ValueError("the corner table needs at least one dimension")
    count = 1 << ndim
    codes = np.arange(count, dtype=np.uint32)
    take_hi = (
        (codes[:, None] >> np.arange(ndim - 1, -1, -1)[None, :]) & 1
    ).astype(bool)
    low_choices = ndim - take_hi.sum(axis=1)
    signs = np.where(low_choices % 2 == 0, 1, -1).astype(np.int8)
    take_hi.setflags(write=False)
    signs.setflags(write=False)
    return take_hi, signs


def gather_corner_values(
    prefix: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    counter: AccessCounter = NULL_COUNTER,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read all ``K · 2^d`` Theorem-1 corners of ``P`` in one gather.

    Args:
        prefix: The prefix array ``P`` (any number of dimensions).
        lows: Validated ``(K, d)`` inclusive lower bounds.
        highs: Validated ``(K, d)`` inclusive upper bounds.
        counter: Charged one ``prefix_cells`` unit per *valid* corner
            (corners with a ``−1`` coordinate are the implicit zero and
            cost nothing), matching the scalar path's accounting.

    Returns:
        ``(values, valid, signs)``: a ``(K, 2^d)`` array of gathered
        ``P`` cells (garbage where invalid), a ``(K, 2^d)`` bool validity
        mask, and the shared ``(2^d,)`` sign row.
    """
    take_hi, signs = corner_table(prefix.ndim)
    # (K, 2^d, d) corner coordinates: h_j where take_hi, else l_j − 1.
    corners = np.where(
        take_hi[None, :, :], highs[:, None, :], lows[:, None, :] - 1
    )
    valid = (corners >= 0).all(axis=2)
    clipped = np.maximum(corners, 0)
    flat = np.ravel_multi_index(
        tuple(np.moveaxis(clipped, 2, 0)), prefix.shape
    )
    values = prefix.ravel()[flat.reshape(-1)].reshape(flat.shape)
    counter.count_prefix(int(valid.sum()))
    return values, valid, signs


def combine_corner_values(
    values: np.ndarray,
    valid: np.ndarray,
    signs: np.ndarray,
    operator: InvertibleOperator,
) -> np.ndarray:
    """Reduce gathered corners to per-query aggregates (Theorem 1).

    Positive and negative corners are reduced separately with the
    operator's ufunc (invalid corners contribute the identity) and then
    combined once with ``⊖`` — the exact algebra of the scalar path, so
    integer results are bit-identical.
    """
    positive_mask = valid & (signs > 0)[None, :]
    negative_mask = valid & (signs < 0)[None, :]
    apply_ufunc = operator.apply
    if not isinstance(apply_ufunc, np.ufunc):  # pragma: no cover
        raise TypeError(
            "the batch kernel requires a ufunc operator; "
            f"{operator.name!r} is not one"
        )
    # ``values`` is gathered from a prefix array already promoted by
    # ``accumulation_dtype``; stating the reduce dtype keeps the corner
    # algebra in that dtype even if a caller hands in narrower corners.
    target = operator.accumulation_dtype(values.dtype)
    positive = apply_ufunc.reduce(
        np.where(positive_mask, values, operator.identity),
        axis=1,
        dtype=target,
    )
    negative = apply_ufunc.reduce(
        np.where(negative_mask, values, operator.identity),
        axis=1,
        dtype=target,
    )
    return operator.invert(positive, negative)
