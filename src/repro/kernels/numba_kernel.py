"""The optional ``numba`` JIT backend (feature-flagged, soft-degrading).

When numba is importable (and ``REPRO_NUMBA_DISABLE`` is unset), the
segment-reduce inner loop is replaced with an ``@njit(nogil=True)``
compiled loop for additive reductions over numeric dtypes — the one
primitive where a compiled loop beats ``reduceat`` (no gather buffer, no
index expansion).  Everything else, and every non-JIT-able combination
(xor/product operators, bool/object dtypes), delegates to the serial
numpy oracle.

When numba is absent the backend still registers and works: it *is* the
numpy oracle with a different name and ``jit_active = False``.  The
degradation is silent by design — no warnings — so CI can run the
no-numba leg under ``PYTHONWARNINGS=error`` and prove the fallback path
is warning-clean.
"""

from __future__ import annotations

import importlib.util
import os
from collections.abc import Callable

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.kernels.numpy_kernel import NumpyKernel
from repro.kernels.registry import register_kernel

#: Set (to any non-empty value) to force the numpy fallback even when
#: numba is installed — the CI "without numba" leg uses this.
ENV_DISABLE = "REPRO_NUMBA_DISABLE"


def numba_available() -> bool:
    """Whether the JIT can activate (numba importable, not disabled)."""
    if os.environ.get(ENV_DISABLE):
        return False
    return importlib.util.find_spec("numba") is not None


@register_kernel(
    "numba",
    description="JIT-compiled segment reduce when numba is importable; "
    "degrades silently to the numpy oracle otherwise",
)
class NumbaKernel(NumpyKernel):
    """Numba-accelerated backend with a graceful numpy fallback."""

    name = "numba"
    serial_boundaries = False

    def __init__(self) -> None:
        self.jit_active = numba_available()
        self._seg_sum: Callable[..., None] | None = None

    def _compiled_seg_sum(self) -> Callable[..., None] | None:
        """Lazily compile the additive segment loop (None on failure)."""
        if not self.jit_active:
            return None
        if self._seg_sum is None:
            try:
                from numba import njit  # type: ignore[import-not-found]

                @njit(nogil=True, cache=False)
                def seg_sum(flat, starts, lengths, out):  # pragma: no cover
                    for i in range(len(starts)):
                        acc = out[i]
                        base = starts[i]
                        for j in range(lengths[i]):
                            acc = acc + flat[base + j]
                        out[i] = acc

                self._seg_sum = seg_sum
            except Exception:
                self.jit_active = False
                return None
        return self._seg_sum

    def segment_reduce(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        operator: InvertibleOperator,
    ) -> np.ndarray:
        if (
            operator.name == "sum"
            and flat.dtype.kind in "iuf"
            and len(starts) > 0
        ):
            seg_sum = self._compiled_seg_sum()
            if seg_sum is not None:
                target = operator.accumulation_dtype(flat.dtype)
                out = np.zeros(len(starts), dtype=target)
                seg_sum(
                    np.ascontiguousarray(flat, dtype=target),
                    np.asarray(starts, dtype=np.int64),
                    np.asarray(lengths, dtype=np.int64),
                    out,
                )
                return out
        return super().segment_reduce(flat, starts, lengths, operator)
