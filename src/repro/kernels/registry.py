"""The kernel registry and the backend-selection precedence chain.

Mirrors :mod:`repro.index.registry`: backends self-register under a short
name via :func:`register_kernel`, and everything else refers to them by
that name.  Selection follows a fixed precedence, most specific first:

1. an explicit ``kernel=`` argument at the call site;
2. the per-index override (the ``kernel`` attribute structures inherit
   from :class:`repro.index.protocol._IndexBase`, also settable through
   :class:`~repro.query.engine.RangeQueryEngine`'s ``kernel=`` kwarg);
3. the ``REPRO_KERNEL`` environment variable;
4. the default, ``"numpy"`` — the factored-out historical code path, so
   an unconfigured process behaves bit-for-bit as before the kernel
   layer existed.

Kernel instances are created lazily and cached per name: backends are
long-lived (the threaded backend owns a worker pool), so one instance
serves the whole process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from collections.abc import Callable

from repro.kernels.protocol import ExecutionKernel

#: Environment variable consulted by :func:`resolve_kernel` (step 3).
ENV_KERNEL = "REPRO_KERNEL"

#: The backend an unconfigured process runs on (the correctness oracle).
DEFAULT_KERNEL = "numpy"


@dataclass(frozen=True)
class KernelInfo:
    """Registry record for one execution backend."""

    name: str
    factory: Callable[[], ExecutionKernel]
    description: str = ""


_REGISTRY: dict[str, KernelInfo] = {}
_INSTANCES: dict[str, ExecutionKernel] = {}


def register_kernel(
    name: str, *, description: str = ""
) -> Callable[[Callable[[], ExecutionKernel]], Callable[[], ExecutionKernel]]:
    """Class/factory decorator registering an execution backend.

    Args:
        name: Registry name (``"numpy"``, ``"threaded"``, ``"numba"``...).
        description: One-line human summary (shown by benchmarks/docs).
    """

    def decorate(
        factory: Callable[[], ExecutionKernel],
    ) -> Callable[[], ExecutionKernel]:
        if name in _REGISTRY:
            raise ValueError(f"kernel {name!r} is already registered")
        _REGISTRY[name] = KernelInfo(
            name=name, factory=factory, description=description
        )
        return factory

    return decorate


def available_kernels() -> tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def kernel_info(name: str) -> KernelInfo:
    """The registry record for ``name`` (raises ``KeyError`` on typos)."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown kernel {name!r}; available: "
            f"{', '.join(available_kernels())}"
        )
    return _REGISTRY[name]


def get_kernel(name: str) -> ExecutionKernel:
    """The (cached) backend instance registered under ``name``."""
    info = kernel_info(name)
    if name not in _INSTANCES:
        _INSTANCES[name] = info.factory()
    return _INSTANCES[name]


def resolve_kernel(
    selected: str | ExecutionKernel | None = None,
    override: str | ExecutionKernel | None = None,
) -> ExecutionKernel:
    """Resolve the backend per the precedence chain (module docstring).

    Args:
        selected: The call site's explicit choice (name or instance).
        override: The per-index override attribute, if any.

    Returns:
        A live :class:`ExecutionKernel`.  An unknown name — wherever it
        came from, including ``$REPRO_KERNEL`` — raises ``KeyError``
        loudly rather than silently falling back.
    """
    env = os.environ.get(ENV_KERNEL) or None
    for choice in (selected, override, env):
        if choice is None:
            continue
        if isinstance(choice, str):
            return get_kernel(choice)
        return choice
    return get_kernel(DEFAULT_KERNEL)
