"""The ``numpy`` backend: the historical code path, factored out.

This is the correctness oracle every other backend is differentially
fuzzed and benchmarked against.  It is intentionally boring: the corner
primitives are exactly the ones :mod:`repro.query.batch` always used,
and ``serial_boundaries`` is True, so blocked structures keep their
historical per-query boundary loops — an unconfigured process computes
bit-for-bit what it did before the kernel layer existed.
"""

from __future__ import annotations

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.kernels.corner import (
    combine_corner_values,
    gather_corner_values,
)
from repro.kernels.registry import register_kernel
from repro.kernels.segments import scatter_serial, segment_reduce_serial


@register_kernel(
    "numpy",
    description="single-threaded numpy; the factored-out historical "
    "path and the correctness oracle",
)
class NumpyKernel:
    """Serial numpy implementation of the three kernel primitives."""

    name = "numpy"
    serial_boundaries = True

    def corner_gather(
        self,
        prefix: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        operator: InvertibleOperator,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        if len(lows) == 0:
            target = operator.accumulation_dtype(prefix.dtype)
            return np.zeros(0, dtype=target)
        values, valid, signs = gather_corner_values(
            prefix, lows, highs, counter
        )
        return combine_corner_values(values, valid, signs, operator)

    def segment_reduce(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        operator: InvertibleOperator,
    ) -> np.ndarray:
        return segment_reduce_serial(flat, starts, lengths, operator)

    def scatter(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        deltas: np.ndarray,
        operator: InvertibleOperator,
    ) -> None:
        scatter_serial(target, indices, deltas, operator)
