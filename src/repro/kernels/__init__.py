"""Pluggable execution backends for the hot query paths.

See :mod:`repro.kernels.protocol` for the contract,
:mod:`repro.kernels.registry` for registration and the selection
precedence (call site > per-index override > ``$REPRO_KERNEL`` >
``"numpy"``), and ``docs/KERNELS.md`` for the design discussion.

Importing this package registers the shipped backends:

* ``numpy`` — the factored-out historical path; the correctness oracle;
* ``threaded`` — shard-and-combine over a worker pool, with the
  vectorized blocked-boundary pass;
* ``numba`` — JIT segment reduce when numba is importable, silently the
  numpy path otherwise;
* ``auto`` — ``threaded`` on multi-core hosts, ``numpy`` on single-core.
"""

from __future__ import annotations

import os

from repro.kernels.boundary import (
    blocked_sum_many_vectorized,
    box_reduce_many,
)
from repro.kernels.corner import (
    combine_corner_values,
    corner_table,
    gather_corner_values,
)
from repro.kernels.numba_kernel import NumbaKernel, numba_available
from repro.kernels.numpy_kernel import NumpyKernel
from repro.kernels.protocol import ExecutionKernel
from repro.kernels.registry import (
    DEFAULT_KERNEL,
    ENV_KERNEL,
    KernelInfo,
    available_kernels,
    get_kernel,
    kernel_info,
    register_kernel,
    resolve_kernel,
)
from repro.kernels.threaded import ENV_WORKERS, ThreadedKernel


@register_kernel(
    "auto",
    description="threaded on multi-core hosts, numpy on single-core",
)
def _auto_kernel() -> ExecutionKernel:
    workers = os.environ.get(ENV_WORKERS)
    cores = int(workers) if workers else (os.cpu_count() or 1)
    return get_kernel("threaded" if cores > 1 else "numpy")


__all__ = [
    "DEFAULT_KERNEL",
    "ENV_KERNEL",
    "ENV_WORKERS",
    "ExecutionKernel",
    "KernelInfo",
    "NumbaKernel",
    "NumpyKernel",
    "ThreadedKernel",
    "available_kernels",
    "blocked_sum_many_vectorized",
    "box_reduce_many",
    "combine_corner_values",
    "corner_table",
    "gather_corner_values",
    "get_kernel",
    "kernel_info",
    "numba_available",
    "register_kernel",
    "resolve_kernel",
]
