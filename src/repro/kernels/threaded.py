"""The ``threaded`` shard-and-combine backend.

Work is split into shards — the K query rows of a corner gather, or the
segment list of a boundary reduce weighted by cell count — and each
shard runs the serial numpy primitive on a worker thread.  numpy releases
the GIL inside its gather/reduce inner loops, so on multi-core hosts the
shards genuinely overlap; per-shard partials are plain row-ranges of the
output, so "combine" is concatenation and needs no operator algebra.

Below ``min_parallel_items`` of work (or with a single worker) the pool
is skipped entirely and the serial primitive runs inline — thread
hand-off costs more than it saves on small batches.  The worker count is
pinned via ``REPRO_KERNEL_WORKERS`` (benchmarks set it explicitly so
speedup numbers are reproducible across runners); it defaults to
``os.cpu_count()``.

``serial_boundaries`` is False: blocked structures route their boundary
regions through the one-pass vectorized machinery of
:mod:`repro.kernels.boundary` instead of per-query Python loops — on
single-core hosts that vectorization, not thread parallelism, is where
this backend's speedup comes from (see docs/KERNELS.md).

Scatter stays serial: duplicate-index updates must apply sequentially,
and partitioning indices by shard would cost more than the scatter.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.kernels.protocol import ExecutionKernel
from repro.kernels.registry import register_kernel
from repro.kernels.segments import (
    scatter_serial,
    segment_reduce_serial,
)

#: Environment variable pinning the worker-pool size.
ENV_WORKERS = "REPRO_KERNEL_WORKERS"

#: Work items (corner reads / scanned cells) below which the pool is
#: skipped and the serial primitive runs inline.
MIN_PARALLEL_ITEMS = 1 << 15


def _env_workers() -> int | None:
    raw = os.environ.get(ENV_WORKERS)
    if not raw:
        return None
    value = int(raw)
    if value < 1:
        raise ValueError(f"{ENV_WORKERS} must be >= 1, got {value}")
    return value


@register_kernel(
    "threaded",
    description="shard-and-combine worker pool over the serial numpy "
    "primitives, with vectorized blocked boundaries",
)
class ThreadedKernel:
    """Shard-and-combine execution over a lazy thread pool."""

    name = "threaded"
    serial_boundaries = False

    def __init__(
        self,
        max_workers: int | None = None,
        min_parallel_items: int = MIN_PARALLEL_ITEMS,
    ) -> None:
        if max_workers is None:
            max_workers = _env_workers()
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = max(1, int(max_workers))
        self.min_parallel_items = int(min_parallel_items)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: Shard count of the most recent parallel dispatch (0 when the
        #: auto heuristic chose the inline serial path) — a diagnostic
        #: hook for tests and benchmarks, not part of the protocol.
        self.last_shards = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-kernel",
                )
            return self._pool

    def executor(self) -> ThreadPoolExecutor:
        """The backend's worker pool, created on first use.

        Public so co-operating layers can share one pool instead of
        stacking their own threads on top — the serving layer offloads
        blocking query execution onto this executor, keeping the total
        thread count at ``max_workers`` whether a query runs through the
        event loop or straight through the kernel.
        """
        return self._ensure_pool()

    def _shard_bounds(self, count: int) -> list[tuple[int, int]]:
        """Split ``count`` rows into ≤ ``max_workers`` even spans."""
        shards = min(self.max_workers, count)
        edges = np.linspace(0, count, shards + 1, dtype=np.int64)
        return [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(shards)
            if edges[i] < edges[i + 1]
        ]

    def corner_gather(
        self,
        prefix: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        operator: InvertibleOperator,
        counter: AccessCounter = NULL_COUNTER,
    ) -> np.ndarray:
        serial = _serial()
        k = len(lows)
        work = k << prefix.ndim  # K · 2^d corner reads
        if (
            self.max_workers <= 1
            or k < 2
            or work < self.min_parallel_items
        ):
            self.last_shards = 0
            return serial.corner_gather(
                prefix, lows, highs, operator, counter
            )
        bounds = self._shard_bounds(k)
        self.last_shards = len(bounds)
        pool = self._ensure_pool()

        def run(span: tuple[int, int]) -> np.ndarray:
            lo, hi = span
            return serial.corner_gather(
                prefix, lows[lo:hi], highs[lo:hi], operator, counter
            )

        parts = list(pool.map(run, bounds))
        return np.concatenate(parts)

    def segment_reduce(
        self,
        flat: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        operator: InvertibleOperator,
    ) -> np.ndarray:
        n = len(starts)
        lengths = np.asarray(lengths, dtype=np.int64)
        total = int(lengths.sum()) if n else 0
        if (
            self.max_workers <= 1
            or n < 2
            or total < self.min_parallel_items
        ):
            self.last_shards = 0
            return segment_reduce_serial(flat, starts, lengths, operator)
        # Shard on cumulative cell count, not segment count — one huge
        # segment must not leave every other worker idle.
        cumulative = np.cumsum(lengths)
        shards = min(self.max_workers, n)
        targets = np.linspace(
            0, total, shards + 1, dtype=np.int64
        )[1:-1]
        cuts = np.searchsorted(cumulative, targets, side="left") + 1
        edges = np.unique(np.concatenate(([0], cuts, [n])))
        bounds = [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(len(edges) - 1)
        ]
        self.last_shards = len(bounds)
        pool = self._ensure_pool()

        def run(span: tuple[int, int]) -> np.ndarray:
            lo, hi = span
            return segment_reduce_serial(
                flat, starts[lo:hi], lengths[lo:hi], operator
            )

        parts = list(pool.map(run, bounds))
        return np.concatenate(parts)

    def scatter(
        self,
        target: np.ndarray,
        indices: np.ndarray,
        deltas: np.ndarray,
        operator: InvertibleOperator,
    ) -> None:
        # Serial on purpose: duplicates must apply in sequence, and
        # partitioning by shard costs more than the scatter itself.
        scatter_serial(target, indices, deltas, operator)


def _serial() -> ExecutionKernel:
    """The shared serial delegate (import-cycle-free lazy accessor)."""
    from repro.kernels.registry import get_kernel

    return get_kernel("numpy")
