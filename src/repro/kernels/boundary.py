"""One-pass vectorized boundary machinery for the blocked structures.

The historical blocked query path answers each query's boundary regions
with per-query Python: plan the ``3^{d'}`` decomposition, pick method 1
(scan the region) or method 2 (superblock minus complement) per region,
and reduce each scan with a separate ``reduce_box`` call.  That loop is
the dominant cost of ``sum_many`` on blocked structures — ``K`` queries
pay the interpreter ``K · 3^{d'}`` times.

This module evaluates the *entire batch* in a constant number of array
passes:

1. per chosen dimension, the §4.2 split points (``l'``, ``h'``, the
   aligned superblock bounds) are computed for all ``K`` queries at once,
   giving a ``(3, K)`` piece table per dimension;
2. the combo loop runs over the ``3^{d'}`` *slots* — not over queries —
   and classifies every query's region under that combo in vectorized
   form: empty / internal / method 1 / method 2 (the same
   ``volume(region) ≤ volume(complement) + 2^{d'} − 1`` rule, applied
   row-wise);
3. method-2 complements are peeled axis by axis exactly like
   :func:`repro._util.box_difference`, but for all affected queries at
   once;
4. every raw-cube scan this produces — across all queries, combos and
   complement pieces — lands in one flat list of boxes, reduced in a
   single :func:`box_reduce_many` pass (gather + ``ufunc.reduceat``
   through the kernel's ``segment_reduce``);
5. per-query contributions are folded with ``ufunc.at`` into positive /
   negative accumulators and combined once with ``⊖``.

Access counting is preserved exactly: the same ``prefix_cells`` /
``cube_cells`` totals are charged as the scalar loop would charge, so
instrumented comparisons hold across kernels.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.core.operators import InvertibleOperator
from repro.instrumentation import NULL_COUNTER, AccessCounter
from repro.kernels.protocol import ExecutionKernel
from repro.kernels.segments import exclusive_offsets


def c_strides(shape: tuple[int, ...]) -> np.ndarray:
    """Element (not byte) strides of a C-ordered array of ``shape``."""
    strides = np.ones(len(shape), dtype=np.int64)
    for j in range(len(shape) - 2, -1, -1):
        strides[j] = strides[j + 1] * shape[j + 1]
    return strides


def box_reduce_many(
    array: np.ndarray,
    box_lo: np.ndarray,
    box_hi: np.ndarray,
    operator: InvertibleOperator,
    kernel: ExecutionKernel,
) -> np.ndarray:
    """Reduce ``n`` axis-aligned boxes of one array in a single pass.

    Each box is expanded into its contiguous last-axis runs (one run per
    row of the box), all runs of all boxes are reduced together through
    the kernel's ``segment_reduce``, and per-box totals come from a
    second ``reduceat`` over the run aggregates.  Boxes may appear in any
    order and overlap freely.  The caller owns counter accounting.

    Args:
        array: The source array (C-ordered; backends materialize C
            layouts).
        box_lo: ``(n, d)`` inclusive lower corners, all inside ``array``.
        box_hi: ``(n, d)`` inclusive upper corners, ``>= box_lo``.
        operator: The invertible operator (must expose a ufunc).
        kernel: Backend whose ``segment_reduce`` does the heavy pass.

    Returns:
        An ``(n,)`` array of box aggregates in the accumulation dtype.
    """
    target = operator.accumulation_dtype(array.dtype)
    n = len(box_lo)
    if n == 0:
        return np.zeros(0, dtype=target)
    apply_ufunc = operator.apply
    if not isinstance(apply_ufunc, np.ufunc):  # pragma: no cover
        raise TypeError(
            "box_reduce_many requires a ufunc operator; "
            f"{operator.name!r} is not one"
        )
    flat = np.reshape(array, -1)
    extents = box_hi - box_lo + 1
    strides = c_strides(tuple(int(s) for s in array.shape))
    base = (box_lo * strides[None, :]).sum(axis=1)
    run_length = extents[:, -1]
    runs_per_box = (
        np.prod(extents[:, :-1], axis=1)
        if array.ndim > 1
        else np.ones(n, dtype=np.int64)
    )
    box_offsets = exclusive_offsets(runs_per_box)
    total_runs = int(runs_per_box.sum())
    box_of_run = np.repeat(np.arange(n, dtype=np.int64), runs_per_box)
    # Mixed-radix decode of each run's rank within its box: the rank
    # counts row-major over the leading d−1 extents, so peeling from the
    # last leading axis upward recovers per-axis offsets.
    rank = np.arange(total_runs, dtype=np.int64) - np.repeat(
        box_offsets, runs_per_box
    )
    starts = base[box_of_run].copy()
    remainder = rank
    for j in range(array.ndim - 2, -1, -1):
        axis_extent = extents[box_of_run, j]
        starts += (remainder % axis_extent) * strides[j]
        remainder = remainder // axis_extent
    run_values = kernel.segment_reduce(
        flat, starts, run_length[box_of_run], operator
    )
    return apply_ufunc.reduceat(run_values, box_offsets, dtype=target)


def _aligned_many(
    structure: object,
    chosen_lo: np.ndarray,
    chosen_hi: np.ndarray,
    owners: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    kernel: ExecutionKernel,
    counter: AccessCounter,
) -> np.ndarray:
    """Block-aligned sums from ``P`` for ``n`` chosen-dim regions.

    Args:
        structure: The blocked structure (full or partial).
        chosen_lo, chosen_hi: ``(n, d')`` raw-coordinate bounds of
            block-aligned regions over the chosen dimensions.
        owners: ``(n,)`` query rows (supplying the passive extents).
        lows, highs: The full ``(K, d)`` query bounds.
        kernel: Backend for gathers/reduces.
        counter: Charged exactly as the scalar ``_aligned_*`` would.

    Returns:
        ``(n,)`` aggregates in the prefix accumulation dtype.
    """
    op = structure.operator
    b = structure.block_size
    prefix = structure.blocked_prefix
    block_lo = chosen_lo // b
    block_hi = chosen_hi // b
    chosen_dims = _chosen_dims(structure)
    passive_dims = _passive_dims(structure)
    if not passive_dims:
        # Every dimension is chosen: the slabs are single prefix cells
        # and Theorem 1 applies directly — one corner gather.
        return kernel.corner_gather(
            prefix, block_lo, block_hi, op, counter
        )
    n = len(block_lo)
    dprime = len(chosen_dims)
    target = op.accumulation_dtype(prefix.dtype)
    positive = np.full(n, op.identity, dtype=target)
    negative = np.full(n, op.identity, dtype=target)
    passive_lo = lows[owners][:, passive_dims]
    passive_hi = highs[owners][:, passive_dims]
    passive_cells = np.prod(passive_hi - passive_lo + 1, axis=1)
    for corner_choice in product((False, True), repeat=dprime):
        coords = np.where(
            np.asarray(corner_choice)[None, :], block_hi, block_lo - 1
        )
        valid = (coords >= 0).all(axis=1)
        if not np.any(valid):
            continue
        counter.count_prefix(int(passive_cells[valid].sum()))
        slab_lo = np.empty((int(valid.sum()), prefix.ndim), dtype=np.int64)
        slab_hi = np.empty_like(slab_lo)
        slab_lo[:, chosen_dims] = coords[valid]
        slab_hi[:, chosen_dims] = coords[valid]
        slab_lo[:, passive_dims] = passive_lo[valid]
        slab_hi[:, passive_dims] = passive_hi[valid]
        values = box_reduce_many(prefix, slab_lo, slab_hi, op, kernel)
        if corner_choice.count(False) % 2 == 0:
            positive[valid] = op.apply(
                positive[valid], values.astype(target, copy=False)
            )
        else:
            negative[valid] = op.apply(
                negative[valid], values.astype(target, copy=False)
            )
    return op.invert(positive, negative)


def _chosen_dims(structure: object) -> tuple[int, ...]:
    """The prefix-accumulated dimensions (all of them for §4 cubes)."""
    dims = getattr(structure, "prefix_dims", None)
    if dims is None:
        return tuple(range(structure.ndim))
    return tuple(dims)


def _passive_dims(structure: object) -> tuple[int, ...]:
    chosen = set(_chosen_dims(structure))
    return tuple(j for j in range(structure.ndim) if j not in chosen)


def blocked_sum_many_vectorized(
    structure: object,
    lows: np.ndarray,
    highs: np.ndarray,
    kernel: ExecutionKernel,
    counter: AccessCounter = NULL_COUNTER,
) -> np.ndarray:
    """Batch §4 range-sums with the boundary regions fully vectorized.

    Serves both :class:`~repro.core.blocked.BlockedPrefixSumCube` (all
    dimensions chosen) and
    :class:`~repro.core.blocked_partial.BlockedPartialPrefixSumCube`
    (chosen subset + passive slabs).  Results and access-counter totals
    match the scalar decomposition exactly — this is the
    ``serial_boundaries = False`` fast path the ``threaded`` and
    ``numba`` kernels select.

    Args:
        structure: A blocked (partial) prefix-sum cube.
        lows: Validated non-empty ``(K, d)`` inclusive lower bounds.
        highs: Validated ``(K, d)`` inclusive upper bounds.
        kernel: The resolved execution backend.
        counter: Standard access counter.

    Returns:
        A ``(K,)`` array of aggregates.
    """
    op = structure.operator
    b = structure.block_size
    prefix = structure.blocked_prefix
    source = structure.source
    K, ndim = lows.shape
    target = op.accumulation_dtype(prefix.dtype)
    if K == 0:
        return np.zeros(0, dtype=target)
    chosen_dims = np.asarray(_chosen_dims(structure), dtype=np.int64)
    passive_dims = np.asarray(_passive_dims(structure), dtype=np.int64)
    dprime = len(chosen_dims)
    if dprime == 0:
        # No accumulated dimensions: every query is one raw slab scan.
        volumes = np.prod(highs - lows + 1, axis=1)
        counter.count_cube(int(volumes.sum()))
        return box_reduce_many(source, lows, highs, op, kernel).astype(
            target, copy=False
        )
    sizes = np.asarray(structure.shape, dtype=np.int64)[chosen_dims]
    lo_c = lows[:, chosen_dims]
    hi_c = highs[:, chosen_dims]
    # §4.2 split points, all K queries at once (cf. _plan_dimension).
    low_aligned = (lo_c // b) * b  # l''
    low_up = -(-lo_c // b) * b  # l' = b⌈lo/b⌉
    high_down = (hi_c // b) * b  # h'
    high_up = np.minimum(-(-hi_c // b) * b, sizes[None, :])  # h''
    bump = high_up == high_down
    high_up = np.where(
        bump, np.minimum(high_down + b, sizes[None, :]), high_up
    )
    case1 = low_up < high_down
    # Piece tables, shape (3, K, d'): slot 0 = left boundary band,
    # slot 1 = the aligned middle (case 1) or the whole unsplit range
    # (case 2), slot 2 = right boundary band.  Case-2 dimensions leave
    # slots 0 and 2 empty (lo > hi), which the region-validity mask
    # filters exactly like the scalar loop's ``region.is_empty`` skip.
    piece_lo = np.stack(
        (lo_c, np.where(case1, low_up, lo_c), high_down)
    )
    piece_hi = np.stack(
        (
            np.where(case1, low_up - 1, lo_c - 1),
            np.where(case1, high_down - 1, hi_c),
            np.where(case1, hi_c, high_down - 1),
        )
    )
    super_lo = np.stack(
        (low_aligned, np.where(case1, low_up, low_aligned), high_down)
    )
    super_hi = np.stack(
        (low_up - 1, np.where(case1, high_down - 1, high_up - 1), high_up - 1)
    )
    has_internal = case1.all(axis=1)
    positive = np.full(K, op.identity, dtype=target)
    negative = np.full(K, op.identity, dtype=target)
    # The all-middle combination of every all-case-1 query is the
    # internal region: one aligned gather covers the whole batch.
    if np.any(has_internal):
        rows = np.nonzero(has_internal)[0]
        values = _aligned_many(
            structure,
            low_up[rows],
            high_down[rows] - 1,
            rows,
            lows,
            highs,
            kernel,
            counter,
        )
        positive[rows] = op.apply(
            positive[rows], values.astype(target, copy=False)
        )
    # Boundary regions: collect every raw-cube scan (method 1 regions,
    # method 2 complement pieces) and every method-2 superblock, then
    # evaluate each family in one pass.
    scan_lo: list[np.ndarray] = []
    scan_hi: list[np.ndarray] = []
    scan_owner: list[np.ndarray] = []
    scan_positive: list[np.ndarray] = []
    sb_lo: list[np.ndarray] = []
    sb_hi: list[np.ndarray] = []
    sb_owner: list[np.ndarray] = []
    corner_overhead = (1 << dprime) - 1
    for combo in product(range(3), repeat=dprime):
        slots = np.asarray(combo)
        region_lo = piece_lo[slots, :, np.arange(dprime)].T  # (K, d')
        region_hi = piece_hi[slots, :, np.arange(dprime)].T
        rows_mask = (region_lo <= region_hi).all(axis=1)
        if all(s == 1 for s in combo):
            # All-middle: internal for all-case-1 rows (handled above).
            rows_mask &= ~has_internal
        if not np.any(rows_mask):
            continue
        rows = np.nonzero(rows_mask)[0]
        r_lo = region_lo[rows]
        r_hi = region_hi[rows]
        s_lo = super_lo[slots, :, np.arange(dprime)].T[rows]
        s_hi = super_hi[slots, :, np.arange(dprime)].T[rows]
        region_vol = np.prod(r_hi - r_lo + 1, axis=1)
        sb_vol = np.prod(s_hi - s_lo + 1, axis=1)
        method1 = region_vol <= sb_vol - region_vol + corner_overhead
        if np.any(method1):
            scan_lo.append(r_lo[method1])
            scan_hi.append(r_hi[method1])
            scan_owner.append(rows[method1])
            scan_positive.append(np.ones(int(method1.sum()), dtype=bool))
        if np.any(~method1):
            m2 = ~method1
            sb_lo.append(s_lo[m2])
            sb_hi.append(s_hi[m2])
            sb_owner.append(rows[m2])
            # Peel the complement (superblock minus region) axis by
            # axis, mirroring repro._util.box_difference: a below piece
            # and an above piece per axis, then the working box shrinks
            # to the region along that axis.
            work_lo = s_lo[m2].copy()
            work_hi = s_hi[m2].copy()
            p_lo = r_lo[m2]
            p_hi = r_hi[m2]
            p_rows = rows[m2]
            for t in range(dprime):
                below = work_lo[:, t] < p_lo[:, t]
                if np.any(below):
                    piece_l = work_lo[below].copy()
                    piece_h = work_hi[below].copy()
                    piece_h[:, t] = p_lo[below, t] - 1
                    scan_lo.append(piece_l)
                    scan_hi.append(piece_h)
                    scan_owner.append(p_rows[below])
                    scan_positive.append(
                        np.zeros(int(below.sum()), dtype=bool)
                    )
                above = p_hi[:, t] < work_hi[:, t]
                if np.any(above):
                    piece_l = work_lo[above].copy()
                    piece_h = work_hi[above].copy()
                    piece_l[:, t] = p_hi[above, t] + 1
                    scan_lo.append(piece_l)
                    scan_hi.append(piece_h)
                    scan_owner.append(p_rows[above])
                    scan_positive.append(
                        np.zeros(int(above.sum()), dtype=bool)
                    )
                work_lo[:, t] = p_lo[:, t]
                work_hi[:, t] = p_hi[:, t]
    # Method-2 superblocks: one aligned pass for the whole batch.
    if sb_owner:
        owners = np.concatenate(sb_owner)
        values = _aligned_many(
            structure,
            np.concatenate(sb_lo),
            np.concatenate(sb_hi),
            owners,
            lows,
            highs,
            kernel,
            counter,
        )
        op.apply.at(positive, owners, values.astype(target, copy=False))
    # All raw-cube scans (method-1 regions + method-2 complements): one
    # box_reduce_many over the source.
    if scan_owner:
        owners = np.concatenate(scan_owner)
        signs = np.concatenate(scan_positive)
        chosen_l = np.concatenate(scan_lo)
        chosen_h = np.concatenate(scan_hi)
        full_lo = np.empty((len(owners), ndim), dtype=np.int64)
        full_hi = np.empty_like(full_lo)
        full_lo[:, chosen_dims] = chosen_l
        full_hi[:, chosen_dims] = chosen_h
        if len(passive_dims):
            full_lo[:, passive_dims] = lows[owners][:, passive_dims]
            full_hi[:, passive_dims] = highs[owners][:, passive_dims]
        volumes = np.prod(full_hi - full_lo + 1, axis=1)
        counter.count_cube(int(volumes.sum()))
        values = box_reduce_many(
            source, full_lo, full_hi, op, kernel
        ).astype(target, copy=False)
        if np.any(signs):
            op.apply.at(positive, owners[signs], values[signs])
        if not np.all(signs):
            op.apply.at(negative, owners[~signs], values[~signs])
    return op.invert(positive, negative)
