"""Sparse cubes: range queries over clustered sensor readings (§10).

A metropolitan sensor network reports (x, y) locations and readings;
most of the grid is empty, but deployments cluster downtown and around
two industrial parks — the paper's "dense sub-clusters in a sparse cube"
regime.  The example runs the §10.2 pipeline (dense-region discovery,
per-region prefix sums, R*-tree outliers) for range sums and the §10.3
max-augmented R*-tree for range max, and shows the storage win.

Run:
    python examples/sensor_sparse.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccessCounter,
    Box,
    SparseCube,
    SparseRangeMaxEngine,
    SparseRangeSumEngine,
)
from repro.query.workload import clustered_points

GRID = (512, 512)


def main() -> None:
    rng = np.random.default_rng(2026)

    deployments = [
        Box((40, 60), (140, 160)),    # downtown
        Box((300, 80), (380, 170)),   # industrial park A
        Box((180, 350), (290, 460)),  # industrial park B
    ]
    cells = clustered_points(
        GRID, deployments, cluster_density=0.7, noise_points=800,
        rng=rng, low=1, high=500,
    )
    cube = SparseCube(GRID, cells)
    print(f"grid {GRID}: {cube.nnz} sensors, density {cube.density:.2%}")

    # --- Build the §10.2 range-sum engine -------------------------------
    engine = SparseRangeSumEngine(cube, block_size=4)
    print(f"\ndense regions found: {engine.dense_region_count}")
    for region in engine.regions[:6]:
        print(f"  {region.box}  ({region.structure.storage_cells} aux cells)")
    print(f"outlier sensors in the R*-tree: {engine.outlier_count}")
    dense_cells = cube.volume
    print(
        f"auxiliary storage: {engine.storage_cells()} cells vs "
        f"{dense_cells} for a dense prefix array "
        f"({dense_cells / max(1, engine.storage_cells()):.0f}x saved)"
    )

    # --- Range-sum queries ----------------------------------------------
    queries = {
        "downtown core": Box((60, 80), (120, 140)),
        "city-wide": Box((0, 0), (511, 511)),
        "cross-district corridor": Box((100, 100), (350, 400)),
        "empty suburbs": Box((440, 440), (500, 500)),
    }
    print("\nrange-sum queries:")
    for name, box in queries.items():
        counter = AccessCounter()
        total = engine.range_sum(box, counter)
        check = cube.naive_range_sum(box)
        assert total == check
        print(
            f"  {name:<25} sum={total:>9}  "
            f"accesses={counter.total:>6}  (volume {box.volume})"
        )

    # --- Range-max via the max-augmented R*-tree (§10.3) ----------------
    max_engine = SparseRangeMaxEngine(cube)
    print("\nhottest sensor per district:")
    for name, box in queries.items():
        counter = AccessCounter()
        hit = max_engine.max_index(box, counter)
        if hit is None:
            print(f"  {name:<25} (no sensors in range)")
            continue
        point, value = hit
        print(
            f"  {name:<25} reading {value:>4} at {point}  "
            f"({counter.index_nodes} of "
            f"{max_engine.rtree.node_count} R* nodes visited)"
        )


if __name__ == "__main__":
    main()
