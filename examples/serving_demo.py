"""Serving demo: an OLAP dashboard backend over HTTP in one process.

Starts the async query service (``repro.serving``) on an ephemeral port,
registers a sales cube with a materialized-cuboid plan behind it, and
plays a dashboard's worth of traffic through the real HTTP stack:
scalar range queries (coalesced into shared batch gathers), a slice, a
roll-up, cache-hit repeats, and a point update that invalidates the
cache.  Every served answer is verified against numpy brute force.

Run:
    python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.optimizer.cuboid_selection import Materialization
from repro.serving import (
    QueryService,
    ServeConfig,
    ServingClient,
    ServingServer,
)


def build_sales_cube() -> np.ndarray:
    """24 months × 8 regions × 6 product lines of unit sales."""
    rng = np.random.default_rng(7_1997)
    return rng.integers(0, 500, size=(24, 8, 6)).astype(np.int64)


async def run_dashboard(sales: np.ndarray) -> None:
    service = QueryService(
        ServeConfig(coalesce_window_s=0.002, cache_capacity=256)
    )
    # A materialized month×region cuboid serves fully-covering SUM
    # queries from the smaller aggregate; everything else routes to the
    # prefix-sum index, with naive scans as the safety net.
    service.register_cube(
        "sales",
        sales,
        plan=[Materialization(key=(0, 1), block_size=1, space=0.0)],
    )
    server = ServingServer(service)
    await server.start()
    print(f"serving on {server.host}:{server.port}")

    try:
        async with ServingClient(server.host, server.port) as client:
            # 1. A burst of scalar asks, fired concurrently the way a
            #    dashboard fans out its tiles — one connection per tile
            #    so the asks are truly simultaneous, and the coalescer
            #    merges them into shared sum_many gathers.  Each tile
            #    constrains the product dimension, so the month×region
            #    cuboid can't serve it and the asks hit the prefix-sum
            #    index, where coalescing applies.
            async def ask_tile(lo: int, hi: int) -> dict:
                async with ServingClient(
                    server.host, server.port
                ) as tile:
                    return await tile.query(
                        "sales", [[lo, hi], None, [0, 2]]
                    )

            windows = [(lo, lo + 5) for lo in range(0, 16, 3)]
            results = await asyncio.gather(
                *(ask_tile(lo, hi) for lo, hi in windows)
            )
            for (lo, hi), result in zip(windows, results):
                want = int(sales[lo : hi + 1, :, 0:3].sum())
                assert result["value"] == want, (result, want)
                print(
                    f"months {lo:2d}–{hi:2d}, products 0–2: total "
                    f"{result['value']:>8}  (tier: {result['tier']})"
                )
            stats = await client.stats()
            batches = stats["coalescer"]["batches"]
            submitted = stats["coalescer"]["submitted"]
            print(
                f"coalescer: {submitted} asks served by {batches} "
                f"engine gathers"
            )
            assert batches < submitted

            # A query the month×region cuboid *can* cover (full product
            # extent) routes to the smaller materialized aggregate.
            covered = await client.query("sales", [[0, 11], [0, 3], None])
            assert covered["value"] == int(sales[0:12, 0:4].sum())
            assert covered["tier"] == "materialized"
            print(
                f"H1 totals for regions 0–3: {covered['value']} "
                f"(tier: {covered['tier']})"
            )

            # 2. Slice and roll-up sugar over the same engine.
            sliced = await client.slice("sales", {1: 3})
            assert sliced["value"] == int(sales[:, 3, :].sum())
            print(f"region 3 all-time total: {sliced['value']}")

            rolled = await client.rollup("sales", [2])
            assert rolled["values"] == sales.sum(axis=(0, 1)).tolist()
            print(f"per-product totals: {rolled['values']}")

            # 3. Re-asking a tile's window hits the result cache.
            repeat = await client.query("sales", [[0, 5], None, [0, 2]])
            assert repeat["tier"] == "cache" and repeat["cached"]
            print("repeat ask answered from the result cache")

            # 4. A late-arriving fact: one point update invalidates the
            #    cache and propagates through every tier.
            sales[3, 2, 1] += 250
            updated = await client.update(
                "sales", [{"index": [3, 2, 1], "delta": 250}]
            )
            assert updated["generation"] == 1
            fresh = await client.query("sales", [[0, 5], None, None])
            assert fresh["value"] == int(sales[0:6].sum())
            assert not fresh["cached"]
            print(
                f"after update: months 0–5 total {fresh['value']} "
                f"(generation {fresh['generation']})"
            )
    finally:
        await server.stop()


def main() -> None:
    sales = build_sales_cube()
    asyncio.run(run_dashboard(sales))
    print("\nall served answers verified against numpy brute force")


if __name__ == "__main__":
    main()
