"""Physical-design tuning for a retail cube (§9 end to end).

A retail data-cube owner has a query log and a memory budget.  This
example runs the paper's three design decisions in order:

1. **Choosing dimensions** (§9.1): which attributes deserve prefix sums
   at all — heuristic vs the exact Gray-code optimum.
2. **Choosing cuboids and block sizes** (§9.2–9.3): the greedy
   benefit/space selection under the budget.
3. Validation: replaying the log against the tuned configuration and
   counting real element accesses.

Run:
    python examples/retail_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import AccessCounter
from repro.optimizer import (
    CuboidSelector,
    MaterializedCuboidSet,
    active_range_lengths,
    exact_selection,
    heuristic_selection,
    subset_cost,
    workloads_from_log,
)
from repro.query import (
    WorkloadProfile,
    generate_query_log,
    make_cube,
)
from repro.query.naive import naive_range_sum

SHAPE = (365, 120, 40, 6)  # day × store × product-line × channel
DIM_NAMES = ("day", "store", "product_line", "channel")


def main() -> None:
    rng = np.random.default_rng(7)
    print(f"retail cube: {dict(zip(DIM_NAMES, SHAPE))}")

    # A log where day ranges dominate, stores get occasional ranges, and
    # product-line/channel are picked as singletons or left at "all".
    profile = WorkloadProfile(
        range_probability=(0.9, 0.35, 0.05, 0.0),
        singleton_probability=0.6,
        range_lengths=((7, 90), (5, 30), (2, 6), (2, 2)),
    )
    log = generate_query_log(SHAPE, profile, 500, rng)
    print(f"query log: {len(log)} queries")

    # --- 1. Choosing dimensions (§9.1) ---------------------------------
    lengths = active_range_lengths(log, SHAPE)
    heuristic_chosen, sums = heuristic_selection(lengths)
    exact_chosen, exact_cost = exact_selection(lengths)
    print("\n§9.1 dimension selection")
    print(f"  column sums R_j: {[int(s) for s in sums]}  (2m = {2 * len(log)})")
    print(f"  heuristic X' = {[DIM_NAMES[j] for j in heuristic_chosen]}"
          f"  (model cost {subset_cost(lengths, heuristic_chosen):.3g})")
    print(f"  exact     X' = {[DIM_NAMES[j] for j in exact_chosen]}"
          f"  (model cost {exact_cost:.3g})")

    # --- 2. Choosing cuboids and block sizes (§9.2–9.3) ----------------
    workloads = workloads_from_log(log, SHAPE)
    print(f"\n§9.2 cuboid selection over {len(workloads)} workload buckets")
    budget = 200_000  # auxiliary cells allowed
    selector = CuboidSelector(SHAPE, workloads, budget)
    plan = selector.solve()
    print(f"  budget: {budget} cells; used: {plan.total_space:.0f}")
    for chosen in plan.chosen:
        names = tuple(DIM_NAMES[j] for j in chosen.key)
        print(f"  materialize prefix sums on {names} with b = "
              f"{chosen.block_size}  ({chosen.space:.0f} cells)")
    reduction = plan.benefit / plan.baseline_cost
    print(f"  modeled workload cost cut: {reduction:.0%}")

    # --- 3. Build the plan and replay the log --------------------------
    print("\nvalidation: building the plan and replaying the full log")
    cube = make_cube(SHAPE, rng, high=50)
    served = MaterializedCuboidSet(cube, plan.chosen)
    print(f"  built {len(served.cuboids)} cuboid structures, "
          f"{served.storage_cells} auxiliary cells")
    tuned = 0
    naive = 0
    routed_to: dict[tuple, int] = {}
    for query in log:
        box = query.to_box(SHAPE)
        counter = AccessCounter()
        got = served.range_sum(query, counter)
        assert got == naive_range_sum(cube, box)
        tuned += counter.total
        naive += box.volume
        cuboid = served.route(query)
        key = cuboid.key if cuboid else ("scan",)
        routed_to[key] = routed_to.get(key, 0) + 1
    print(f"  naive accesses:  {naive}")
    print(f"  tuned accesses:  {tuned}  "
          f"({naive / max(1, tuned):.0f}x fewer)")
    print("  query routing:")
    for key, count in sorted(routed_to.items(), key=lambda kv: -kv[1]):
        names = (
            tuple(DIM_NAMES[j] for j in key)
            if key != ("scan",)
            else "base-cube scan"
        )
        print(f"    {names}: {count} queries")


if __name__ == "__main__":
    main()
