"""Nightly batch loads: keeping the precomputed structures fresh (§5, §7).

OLAP cubes absorb updates in periodic batches ("performed together ... at
midnight every day", §5).  This example simulates a week of trading days:
each night a batch of point updates lands on the cube, the prefix-sum
array is repaired with the §5 region partition (plus Theorem 2's bound on
the work), the max tree with the §7 tag propagation — and morning queries
stay exact and fast.  Progressive bounds (§11) give the analyst an
instant approximation before the exact number.

Run:
    python examples/streaming_updates.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccessCounter,
    BlockedPrefixSumCube,
    Box,
    MaxAssignment,
    PointUpdate,
    PrefixSumCube,
    RangeMaxTree,
    apply_max_updates,
    progressive_bounds,
)
from repro.core.batch_update import theorem2_region_bound

SHAPE = (90, 60)  # trading-day × instrument


def main() -> None:
    rng = np.random.default_rng(11)
    positions = rng.integers(100, 1000, SHAPE).astype(np.int64)

    prefix = PrefixSumCube(positions)
    blocked = BlockedPrefixSumCube(positions, 10)
    max_tree = RangeMaxTree(positions, 4)
    mirror = positions.copy()

    window = Box((30, 10), (59, 39))  # the desk's standing dashboard

    for day in range(1, 8):
        # Overnight: a batch of position changes arrives.
        batch_size = int(rng.integers(10, 40))
        deltas = []
        assignments = []
        seen = set()
        while len(deltas) < batch_size:
            cell = (
                int(rng.integers(0, SHAPE[0])),
                int(rng.integers(0, SHAPE[1])),
            )
            if cell in seen:
                continue
            seen.add(cell)
            change = int(rng.integers(-200, 300))
            deltas.append(PointUpdate(cell, change))
            assignments.append(
                MaxAssignment(cell, int(mirror[cell]) + change)
            )
            mirror[cell] += change

        regions = prefix.apply_updates(deltas)
        blocked.apply_updates(deltas)
        stats = apply_max_updates(max_tree, assignments)
        bound = theorem2_region_bound(batch_size, 2)
        print(
            f"night {day}: {batch_size:>2} updates → "
            f"{regions:>3} prefix regions (Theorem 2 bound {bound}), "
            f"max-tree phases {stats.items_per_phase}, "
            f"rescans {stats.rescans}"
        )

        # Morning: the dashboard refreshes.
        counter = AccessCounter()
        bounds = progressive_bounds(blocked, window, counter)
        exact = prefix.range_sum(window)
        assert int(bounds.lower) <= int(exact) <= int(bounds.upper)
        assert exact == mirror[window.slices()].sum()
        peak = max_tree.max_index(window)
        assert max_tree.source[peak] == mirror[window.slices()].max()
        print(
            f"  morning query: instant bounds "
            f"[{int(bounds.lower)}, {int(bounds.upper)}] "
            f"({counter.total} reads) → exact {int(exact)}; "
            f"peak {max_tree.source[peak]} at {peak}"
        )

    print("\nall structures stayed exact across the week — no rebuilds.")


if __name__ == "__main__":
    main()
