"""ASCII renditions of the paper's two analytic figures.

Figure 11 (tree-sum cost minus prefix-sum cost on a log scale, against
the query side α in blocks) and Figure 14 (the benefit/space curve whose
maximum picks the block size) are pure functions of the §8/§9.3 cost
model — so this example re-plots them in the terminal straight from
:mod:`repro.optimizer.cost_model`, no plotting library required.

Run:
    python examples/paper_figures.py
"""

from __future__ import annotations

import math

from repro.optimizer.cost_model import (
    benefit_space_ratio,
    figure11_difference,
    optimal_block_size_real,
)
from repro.query.stats import QueryStatistics


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
) -> str:
    """A minimal scatter chart: one marker character per series."""
    markers = "ox+*#@%&"
    points = [
        (x, y, markers[i % len(markers)])
        for i, values in enumerate(series.values())
        for x, y in values
    ]
    ys = [math.log10(y) if log_y else y for _, y, _ in points if y > 0 or not log_y]
    xs = [x for x, _, _ in points]
    y_lo, y_hi = min(ys), max(ys)
    x_lo, x_hi = min(xs), max(xs)
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        if log_y:
            if y <= 0:
                continue
            y = math.log10(y)
        col = round((x - x_lo) / (x_hi - x_lo or 1) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo or 1) * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = []
    top = f"1e{y_hi:.1f}" if log_y else f"{y_hi:.0f}"
    bottom = f"1e{y_lo:.1f}" if log_y else f"{y_lo:.0f}"
    lines.append(f"{top:>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{bottom:>8} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 8 + " └" + "─" * width
    )
    lines.append(f"{'':8}   {x_lo:<8.0f}{'':{max(0, width - 16)}}{x_hi:>8.0f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def figure11() -> None:
    print("Figure 11 — Cost(hierarchical tree) − Cost(prefix sum), log y")
    print("(d, b) curves against the query side alpha in blocks\n")
    alphas = list(range(1, 21))
    series = {}
    for d, b in (
        (4, 20),
        (4, 10),
        (3, 20),
        (3, 10),
        (2, 20),
        (2, 10),
    ):
        series[f"d={d},b={b}"] = [
            (a, max(figure11_difference(a, b, d), 0.1)) for a in alphas
        ]
    print(ascii_chart(series, log_y=True))
    print()


def figure14() -> None:
    print("Figure 14 — benefit/space against block size")
    print("(paper example: d=3, N_Q/N=1/100, V−2^d=1000, S=400)\n")
    curve = [
        (b, 10.0 * b**3 - b**4) for b in range(1, 11)
    ]
    print(ascii_chart({"benefit/space": curve}))
    print()
    print("closed-form maximum: b* = (V−2^d)/(S/4) · d/(d+1) = 7.5")
    print("zero crossing:       b  = 4(V−2^d)/S        = 10")


def block_size_sweep() -> None:
    print("\nBonus: the same curve for a live query profile")
    stats = QueryStatistics.from_lengths([60, 45, 50])
    b_star = optimal_block_size_real(stats)
    curve = [
        (b, benefit_space_ratio(stats, 10, 10**6, b))
        for b in range(1, int(b_star * 2))
    ]
    print(ascii_chart({"benefit/space": curve}, height=12))
    print(f"closed form puts the maximum at b* = {b_star:.2f}")


def main() -> None:
    figure11()
    figure14()
    block_size_sweep()


if __name__ == "__main__":
    main()
