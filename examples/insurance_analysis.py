"""The paper's running example: the insurance data cube (§1).

Reproduces the paper's scenario end to end: a cube over (age, year,
state, type) with domains 1–100, 1987–1996, the 50 US states, and
{home, auto, health}; the intro's range query *"revenue from customers
with an age from 37 to 52, in a year from 1988 to 1996, in all of U.S.,
and with auto insurance"*; and the cost comparison between the extended
("all"-augmented) cube of Gray et al. — 16 × 9 × 1 × 1 = 144 accesses —
and the paper's prefix-sum method at ≤ 2^d = 16.

Run:
    python examples/insurance_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccessCounter,
    CategoricalDimension,
    DataCube,
    ExtendedDataCube,
    IntegerDimension,
    PrefixSumCube,
)

US_STATES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
]


def build_cube(rng: np.random.Generator) -> DataCube:
    dimensions = [
        IntegerDimension("age", 1, 100),
        IntegerDimension("year", 1987, 1996),
        CategoricalDimension("state", US_STATES),
        CategoricalDimension("type", ["home", "auto", "health"]),
    ]
    # Synthetic revenue with age structure: auto skews young, home old.
    measures = rng.integers(0, 300, (100, 10, 50, 3)).astype(np.int64)
    ages = np.arange(1, 101)
    auto_profile = np.exp(-((ages - 35) ** 2) / (2 * 20.0**2))
    home_profile = np.exp(-((ages - 55) ** 2) / (2 * 15.0**2))
    measures[:, :, :, 1] += (600 * auto_profile[:, None, None]).astype(
        np.int64
    )
    measures[:, :, :, 0] += (500 * home_profile[:, None, None]).astype(
        np.int64
    )
    return DataCube(dimensions, measures)


def main() -> None:
    rng = np.random.default_rng(1997)
    cube = build_cube(rng)
    print(f"insurance cube: {cube.shape} = {cube.measures.size} cells")

    cube.build_index(block_size=1, max_fanout=4)

    # --- The paper's intro query --------------------------------------
    counter = AccessCounter()
    revenue = cube.sum(
        age=(37, 52), year=(1988, 1996), type="auto", counter=counter
    )
    print("\nQ: revenue, ages 37–52, years 1988–1996, all US, auto")
    print(f"   answer: {revenue}")
    print(f"   prefix-sum method: {counter.total} element accesses")

    # The same query on the extended cube of Gray et al. (§1's baseline).
    extended = ExtendedDataCube(cube.measures)
    counter = AccessCounter()
    query = cube.parse_query(
        {"age": (37, 52), "year": (1988, 1996), "type": "auto"}
    )
    ext_revenue = extended.range_sum(query, counter)
    assert ext_revenue == revenue
    print(f"   extended-cube method: {counter.total} accesses "
          "(the paper's 16 × 9 × 1 × 1)")

    # --- Singleton queries stay one access on the extended cube --------
    counter = AccessCounter()
    auto_1995 = extended.singleton(
        (None, cube.dimension("year").encode(1995), None,
         cube.dimension("type").encode("auto")),
        counter,
    )
    print(f"\n(all, 1995, all, auto) on the extended cube: {auto_1995} "
          f"in {counter.total} access")

    # --- Interactive exploration, constant time per query --------------
    print("\nauto revenue by age band (each row: one constant-time query):")
    for lo in range(20, 70, 10):
        value = cube.sum(age=(lo, lo + 9), type="auto")
        bar = "#" * int(value / 120000)
        print(f"  ages {lo:>2}–{lo + 9:>2}: {value:>9}  {bar}")

    print("\npeak revenue cells:")
    where, value = cube.max(type="auto")
    print(f"  auto:  {value} at {where}")
    where, value = cube.max(type="home")
    print(f"  home:  {value} at {where}")

    # --- §3.4: discard A, keep only P ----------------------------------
    basic = PrefixSumCube(cube.measures, keep_source=False)
    cell = (
        cube.dimension("age").encode(40),
        cube.dimension("year").encode(1990),
        cube.dimension("state").encode("CA"),
        cube.dimension("type").encode("auto"),
    )
    print("\nstorage consideration (§3.4): A discarded, single cell from P:")
    print(f"  A[40, 1990, CA, auto] = {basic.cell(cell)} "
          f"(true value {cube.measures[cell]})")


if __name__ == "__main__":
    main()
