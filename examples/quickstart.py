"""Quickstart: range queries over an OLAP data cube in five minutes.

Builds a small sales cube from raw records, precomputes the paper's
structures, and runs every query class: range-SUM, COUNT, AVERAGE, MAX,
MIN, and a rolling window — each in constant-ish time regardless of how
many cells the query covers.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccessCounter,
    CategoricalDimension,
    DataCube,
    IntegerDimension,
)


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. Declare the functional attributes (the cube's dimensions).
    dimensions = [
        IntegerDimension("month", 1, 24),  # two years of months
        CategoricalDimension(
            "region", ["north", "south", "east", "west"]
        ),
        CategoricalDimension(
            "product", ["laptop", "phone", "tablet", "watch"]
        ),
    ]

    # 2. Generate raw fact records and aggregate them into the cube.
    regions = ["north", "south", "east", "west"]
    products = ["laptop", "phone", "tablet", "watch"]
    records = [
        {
            "month": int(rng.integers(1, 25)),
            "region": regions[int(rng.integers(0, 4))],
            "product": products[int(rng.integers(0, 4))],
            "sales": int(rng.integers(100, 5000)),
        }
        for _ in range(20000)
    ]
    cube = DataCube.from_records(records, dimensions, measure="sales")
    print(f"cube shape (month × region × product): {cube.shape}")

    # 3. Precompute the paper's structures: a prefix-sum array for SUM
    #    family queries (§3) and a max tree for MAX/MIN (§6).
    cube.build_index(block_size=1, max_fanout=4)

    # 4. Range queries — conditions are ranges, singletons, or omitted.
    counter = AccessCounter()
    total = cube.sum(month=(7, 18), region="north", counter=counter)
    print(f"\nnorth sales, months 7–18:   {total}")
    print(f"  answered with {counter.prefix_cells} prefix-array reads")
    print(f"  (a naive scan would read {12 * 1 * 4} cells)")

    q1_average = cube.average(month=(1, 3))
    print(f"Q1 average sale:            {q1_average:.1f}")

    q1_count = cube.count(month=(1, 3))
    print(f"Q1 transaction count:       {q1_count}")

    where, value = cube.max(month=(13, 24))
    print(f"best cell in year two:      {value} at {where}")

    where, value = cube.min(product="watch")
    print(f"weakest watch cell:         {value} at {where}")

    # 5. ROLLING SUM — §1 lists it as a range-sum special case.
    print("\n6-month rolling sales (all regions/products):")
    engine = cube.engine
    for start, window_sum in engine.rolling_sum(axis=0, window=6):
        bar = "#" * int(window_sum / 400000)
        print(f"  months {start + 1:>2}–{start + 6:>2}: {window_sum:>9} {bar}")


if __name__ == "__main__":
    main()
