"""Clickstream monitoring: multi-measure cubes, rolling windows, and the
self-tuning loop (serve → log → re-tune → re-materialize).

A web-analytics team tracks (day, country, device, page-section) events
carrying two measures: page views and dwell-time.  The example shows

* :class:`MeasureSet` — several measures over shared dimensions, with
  AVERAGE and cross-measure ratios from constant-time queries;
* ROLLING windows (§1 lists ROLLING SUM as a range-sum special case);
* the §9 loop closed by :class:`QueryLog`: live queries are recorded,
  the cuboid selector re-tunes from the log, and the chosen plan is
  materialized and replayed.

Run:
    python examples/clickstream_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import AccessCounter, CategoricalDimension, IntegerDimension
from repro.cube import MeasureSet
from repro.optimizer import CuboidSelector, MaterializedCuboidSet
from repro.query import QueryLog

COUNTRIES = ["US", "DE", "JP", "BR", "IN", "GB"]
DEVICES = ["desktop", "mobile", "tablet"]
SECTIONS = ["home", "search", "product", "checkout", "support"]


def generate_events(rng: np.random.Generator, count: int):
    for _ in range(count):
        yield {
            "day": int(rng.integers(1, 91)),
            "country": COUNTRIES[int(rng.integers(0, len(COUNTRIES)))],
            "device": DEVICES[int(rng.integers(0, len(DEVICES)))],
            "section": SECTIONS[int(rng.integers(0, len(SECTIONS)))],
            "views": int(rng.integers(1, 20)),
            "dwell_seconds": int(rng.integers(5, 600)),
        }


def main() -> None:
    rng = np.random.default_rng(90)
    dimensions = [
        IntegerDimension("day", 1, 90),
        CategoricalDimension("country", COUNTRIES),
        CategoricalDimension("device", DEVICES),
        CategoricalDimension("section", SECTIONS),
    ]
    events = MeasureSet.from_records(
        generate_events(rng, 60_000),
        dimensions,
        measures=["views", "dwell_seconds"],
    )
    events.build_indexes(block_size=1, max_fanout=3)
    print(f"clickstream cube: {events.shape}, measures "
          f"{events.measure_names}")

    # --- Multi-measure dashboard queries -------------------------------
    q1_views = events.sum("views", day=(1, 30))
    q1_dwell = events.average("dwell_seconds", day=(1, 30))
    print(f"\ndays 1–30: {q1_views} views, "
          f"avg dwell {q1_dwell:.0f}s per event")
    engagement = events.ratio(
        "dwell_seconds", "views", section="checkout"
    )
    print(f"checkout dwell-per-view ratio: {engagement:.1f}s")
    where, peak = events.max("views", device="mobile")
    print(f"hottest mobile cell: {peak} views at {where}")

    # --- Rolling 7-day views (§1's ROLLING SUM) ------------------------
    print("\n7-day rolling views (first 8 windows):")
    engine = events.cube("views").engine
    for start, total in list(engine.rolling_sum(axis=0, window=7))[:8]:
        print(f"  days {start + 1:>2}–{start + 7:>2}: {total}")

    # --- The self-tuning loop -------------------------------------------
    print("\nself-tuning: recording one week of ad-hoc traffic ...")
    views_cube = events.cube("views")
    log = QueryLog(events.shape)
    for _ in range(250):
        conditions: dict[str, object] = {}
        if rng.random() < 0.9:  # analysts almost always range over days
            start = int(rng.integers(1, 60))
            conditions["day"] = (start, start + int(rng.integers(6, 30)))
        if rng.random() < 0.5:
            conditions["country"] = COUNTRIES[
                int(rng.integers(0, len(COUNTRIES)))
            ]
        if rng.random() < 0.3:
            conditions["section"] = SECTIONS[
                int(rng.integers(0, len(SECTIONS)))
            ]
        query = log.record(views_cube.parse_query(conditions))
        views_cube.engine.sum(query)  # serve it

    workloads = log.workloads()
    print(f"  log: {len(log)} queries across "
          f"{len(workloads)} cuboid buckets")
    budget = 6000
    plan = CuboidSelector(events.shape, workloads, budget).solve()
    print(f"  re-tuned plan under {budget} aux cells:")
    names = ("day", "country", "device", "section")
    for chosen in plan.chosen:
        label = tuple(names[j] for j in chosen.key)
        print(f"    {label} with b={chosen.block_size} "
              f"({chosen.space:.0f} cells)")

    served = MaterializedCuboidSet(views_cube.measures, plan.chosen)
    replay_cost = 0
    naive_cost = 0
    for query in log.queries:
        counter = AccessCounter()
        served.range_sum(query, counter)
        replay_cost += counter.total
        naive_cost += query.to_box(events.shape).volume
    print(f"  replaying the log on the plan: {replay_cost} accesses "
          f"vs {naive_cost} naive ({naive_cost / replay_cost:.0f}x)")


if __name__ == "__main__":
    main()
